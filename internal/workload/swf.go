package workload

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// The Standard Workload Format (SWF) of the Parallel Workload Archive
// stores one job per line with 18 whitespace-separated fields. The fields
// relevant to scheduling simulation are:
//
//	 1  job number
//	 2  submit time (s)
//	 3  wait time (s)           — ignored on input (an output of scheduling)
//	 4  run time (s)
//	 5  number of allocated processors
//	 8  requested number of processors
//	 9  requested time (s)
//	11  status
//
// Missing values are encoded as -1. Comment and header lines start with
// ';'. Header directives of the form "; MaxProcs: N" carry the system size.

// SWFFilter selects which jobs of an SWF log survive parsing, keyed on
// field 11 (status). The zero value keeps everything, matching the raw
// log; replays of cleaned traces typically drop failed jobs, whose
// recorded runtimes do not represent useful work.
type SWFFilter struct {
	// DropFailed skips jobs with status 0 (failed).
	DropFailed bool
	// DropCanceled skips jobs with status 5 (canceled before start).
	DropCanceled bool
	// EcoUsers marks jobs of the listed users (comma-separated SWF user
	// IDs, field 12; "*" opts in every job) as eco-mode opt-ins: their
	// Job.Eco is set, which eco-only power-cap controllers use as the
	// per-job consent flag. A string rather than a slice so the filter
	// stays comparable (the scenario compiler keys workload arenas on
	// it). Empty disables the hook; malformed entries surface as parse
	// errors. The same hook tags wgen presets — see EcoSet.
	EcoUsers string
}

// keep reports whether a job with the given SWF status passes the filter.
func (f SWFFilter) keep(status int) bool {
	if f.DropFailed && status == StatusFailed {
		return false
	}
	if f.DropCanceled && status == StatusCanceled {
		return false
	}
	return true
}

// ParseSWF reads a trace in Standard Workload Format. The system size is
// taken from the MaxProcs header when present; otherwise cpus must be
// supplied by the caller (pass 0 to require the header). Jobs with
// non-positive runtime or processor counts are skipped, mirroring the
// "cleaned" traces the paper uses. Every completion status is kept; use
// ParseSWFFiltered to drop failed or canceled jobs.
func ParseSWF(r io.Reader, name string, cpus int) (*Trace, error) {
	return ParseSWFFiltered(r, name, cpus, SWFFilter{})
}

// ParseSWFFile materializes the SWF log at path — the file-path
// counterpart of ParseSWFFiltered, and of OpenSWFSource for callers that
// need the whole trace.
func ParseSWFFile(path string, cpus int, filter SWFFilter) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseSWFFiltered(f, path, cpus, filter)
}

// ParseSWFFiltered reads a trace in Standard Workload Format, dropping
// jobs the status filter excludes.
func ParseSWFFiltered(r io.Reader, name string, cpus int, filter SWFFilter) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	tr := &Trace{Name: name, CPUs: cpus}
	p := swfParser{cpus: cpus, filter: filter}
	for sc.Scan() {
		job, ok, err := p.parseLine(sc.Text())
		if err != nil {
			return nil, err
		}
		tr.CPUs = p.cpus
		if !ok {
			continue
		}
		cp := job
		tr.Jobs = append(tr.Jobs, &cp)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading swf: %w", err)
	}
	if tr.CPUs <= 0 {
		return nil, fmt.Errorf("workload: swf trace %q has no MaxProcs header and no explicit system size", name)
	}
	tr.SortBySubmit()
	return tr, nil
}

// swfParser holds the line-by-line SWF decoding state shared by the
// materializing ParseSWF and the incremental SWFSource, so both readers
// accept and clean exactly the same inputs (the property FuzzSWFSource
// checks).
type swfParser struct {
	cpus   int
	filter SWFFilter
	lineNo int

	eco      EcoSet // lazily parsed from filter.EcoUsers
	ecoReady bool
}

// parseLine decodes one SWF line. ok=false with a nil error means the
// line carried no job (blank, comment/header, filtered or cleaned out);
// MaxProcs headers update p.cpus as a side effect.
func (p *swfParser) parseLine(raw string) (Job, bool, error) {
	p.lineNo++
	line := strings.TrimSpace(raw)
	if line == "" {
		return Job{}, false, nil
	}
	if strings.HasPrefix(line, ";") {
		if v, ok := swfHeaderInt(line, "MaxProcs"); ok {
			p.cpus = v
		}
		return Job{}, false, nil
	}
	fields := strings.Fields(line)
	if len(fields) < 9 {
		return Job{}, false, fmt.Errorf("workload: swf line %d has %d fields, want >= 9", p.lineNo, len(fields))
	}
	vals := make([]float64, len(fields))
	for i, f := range fields {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return Job{}, false, fmt.Errorf("workload: swf line %d field %d: %v", p.lineNo, i+1, err)
		}
		vals[i] = v
	}
	job := Job{
		ID:      int(vals[0]),
		Submit:  vals[1],
		Runtime: vals[3],
		Beta:    -1,
		User:    -1,
		Status:  StatusUnknown,
	}
	if len(vals) >= 11 {
		job.Status = statusFromSWF(int(vals[10])) // field 11
	}
	if len(vals) >= 12 && vals[11] >= 0 {
		job.User = int(vals[11]) // field 12: user ID
	}
	if !p.ecoReady {
		set, err := p.filter.EcoSet()
		if err != nil {
			return Job{}, false, err
		}
		p.eco, p.ecoReady = set, true
	}
	if !p.eco.Empty() {
		job.Eco = p.eco.Opted(job.User)
	}
	if !p.filter.keep(job.Status) {
		return Job{}, false, nil
	}
	// Processors: prefer the requested count (field 8) when valid,
	// else the allocated count (field 5), following PWA conventions.
	procs := int(vals[7])
	if procs <= 0 {
		procs = int(vals[4])
	}
	job.Procs = procs
	// Requested time: field 9; fall back to the actual runtime when
	// the estimate is missing.
	job.ReqTime = vals[8]
	if job.ReqTime <= 0 {
		job.ReqTime = job.Runtime
	}
	if job.Procs <= 0 || job.Runtime <= 0 || job.ReqTime <= 0 || job.Submit < 0 {
		return Job{}, false, nil // cleaned out, like flurry removal in PWA cleaned logs
	}
	return job, true, nil
}

// statusFromSWF maps SWF field 11 onto the internal Status encoding.
// Unrecognized values (including the partial-execution codes 2–4 some
// logs use) read as unknown, which no filter drops.
func statusFromSWF(v int) int {
	switch v {
	case 0:
		return StatusFailed
	case 1:
		return StatusCompleted
	case 5:
		return StatusCanceled
	}
	return StatusUnknown
}

// statusToSWF maps the internal Status encoding onto SWF field 11.
func statusToSWF(s int) int {
	switch s {
	case StatusFailed:
		return 0
	case StatusCompleted:
		return 1
	case StatusCanceled:
		return 5
	}
	return -1
}

func swfHeaderInt(line, key string) (int, bool) {
	rest := strings.TrimLeft(line, "; \t")
	if !strings.HasPrefix(rest, key) {
		return 0, false
	}
	rest = strings.TrimPrefix(rest, key)
	rest = strings.TrimLeft(rest, ": \t")
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return 0, false
	}
	v, err := strconv.Atoi(fields[0])
	if err != nil {
		return 0, false
	}
	return v, true
}

// WriteSWF writes the trace in Standard Workload Format, including a
// MaxProcs header, so generated traces can be consumed by other SWF tools.
// The completion status column carries each job's Status, so statuses
// round-trip through a write/parse cycle.
func WriteSWF(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	writeSWFHeader(bw, t.Name, t.CPUs, len(t.Jobs))
	for _, j := range t.Jobs {
		if err := writeSWFJob(bw, j); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteSWFStream writes a source in Standard Workload Format as jobs are
// produced, returning the number of jobs written: generating and exporting
// a ten-million-job workload stays flat in memory. When the source knows
// its length (Counted) the output is byte-identical to WriteSWF of the
// materialized trace; otherwise the MaxJobs header is omitted.
func WriteSWFStream(w io.Writer, src JobSource) (int, error) {
	bw := bufio.NewWriter(w)
	jobs := -1
	if c, ok := src.(Counted); ok {
		jobs = c.Len()
	}
	writeSWFHeader(bw, src.Name(), src.CPUs(), jobs)
	n := 0
	for {
		j, ok := src.Next()
		if !ok {
			break
		}
		if err := writeSWFJob(bw, &j); err != nil {
			return n, err
		}
		n++
	}
	if err := src.Err(); err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// writeSWFHeader emits the comment header; jobs < 0 omits the MaxJobs line
// (unknown-length streams).
func writeSWFHeader(bw *bufio.Writer, name string, cpus, jobs int) {
	fmt.Fprintf(bw, "; SWF trace %s\n", name)
	fmt.Fprintf(bw, "; MaxProcs: %d\n", cpus)
	if jobs >= 0 {
		fmt.Fprintf(bw, "; MaxJobs: %d\n", jobs)
	}
}

// writeSWFJob emits one job line.
func writeSWFJob(bw *bufio.Writer, j *Job) error {
	// job submit wait run procs avgcpu mem reqprocs reqtime reqmem
	// status uid gid exe queue partition prevjob thinktime
	_, err := fmt.Fprintf(bw, "%d %d -1 %d %d -1 -1 %d %d -1 %d %d -1 -1 -1 -1 -1 -1\n",
		j.ID, int64(j.Submit), int64(j.Runtime+0.5), j.Procs, j.Procs,
		int64(j.ReqTime+0.5), statusToSWF(j.Status), j.User)
	return err
}
