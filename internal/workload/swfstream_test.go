package workload

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"
)

// stringOpener adapts a string to the SWFSource reopen callback.
func stringOpener(s string) func() (io.ReadCloser, error) {
	return func() (io.ReadCloser, error) { return io.NopCloser(strings.NewReader(s)), nil }
}

// TestSWFSourceMatchesParseSWF streams the shared sample log and a
// generated round-trip and checks the incremental reader yields exactly
// the jobs the materializing parser produces.
func TestSWFSourceMatchesParseSWF(t *testing.T) {
	tr := testTrace("gen", 64, 0, 5, 5, 9, 100, 3600)
	tr.Jobs[1].Status = StatusFailed
	var buf bytes.Buffer
	if err := WriteSWF(&buf, tr); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name   string
		input  string
		cpus   int
		filter SWFFilter
	}{
		{"sample", sampleSWF, 64, SWFFilter{}},
		{"roundtrip", buf.String(), 0, SWFFilter{}},
		{"roundtrip-dropfailed", buf.String(), 0, SWFFilter{DropFailed: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want, err := ParseSWFFiltered(strings.NewReader(tc.input), "w", tc.cpus, tc.filter)
			if err != nil {
				t.Fatal(err)
			}
			src, err := NewSWFSource(stringOpener(tc.input), "w", tc.cpus, tc.filter)
			if err != nil {
				t.Fatal(err)
			}
			if src.CPUs() != want.CPUs {
				t.Fatalf("CPUs = %d, want %d", src.CPUs(), want.CPUs)
			}
			got := drain(t, src)
			if len(got) != len(want.Jobs) {
				t.Fatalf("streamed %d jobs, want %d", len(got), len(want.Jobs))
			}
			for i := range got {
				if got[i] != *want.Jobs[i] {
					t.Fatalf("job %d: %+v, want %+v", i, got[i], *want.Jobs[i])
				}
			}
			// Reset replays from the top.
			if err := src.Reset(); err != nil {
				t.Fatal(err)
			}
			again := drain(t, src)
			if len(again) != len(got) {
				t.Fatalf("replay yielded %d jobs, want %d", len(again), len(got))
			}
			for i := range got {
				if again[i] != got[i] {
					t.Fatalf("replay job %d differs", i)
				}
			}
		})
	}
}

// TestSWFSourceRejectsUnsorted: the incremental reader cannot sort, so a
// submit-time regression must surface as an error, not silent disorder.
func TestSWFSourceRejectsUnsorted(t *testing.T) {
	input := "; MaxProcs: 8\n" +
		"1 100 -1 10 2 -1 -1 2 20 -1 1 -1 -1 -1 -1 -1 -1 -1\n" +
		"2 50 -1 10 2 -1 -1 2 20 -1 1 -1 -1 -1 -1 -1 -1 -1\n"
	src, err := NewSWFSource(stringOpener(input), "unsorted", 0, SWFFilter{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := src.Next(); !ok {
		t.Fatal("first job rejected")
	}
	if _, ok := src.Next(); ok {
		t.Fatal("out-of-order job accepted")
	}
	if src.Err() == nil {
		t.Fatal("no error for unsorted log")
	}
}

// TestSWFSourceMissingSize mirrors ParseSWF's header requirement, caught
// at open time instead of after a full parse.
func TestSWFSourceMissingSize(t *testing.T) {
	input := "1 0 -1 10 2 -1 -1 2 20 -1 1 -1 -1 -1 -1 -1 -1 -1\n"
	if _, err := NewSWFSource(stringOpener(input), "nosize", 0, SWFFilter{}); err == nil {
		t.Fatal("accepted a log with no system size")
	}
	if _, err := NewSWFSource(stringOpener(input), "sized", 16, SWFFilter{}); err != nil {
		t.Fatalf("explicit size rejected: %v", err)
	}
}

// TestSWFSourceOpenFailure propagates reopen errors from Reset.
func TestSWFSourceOpenFailure(t *testing.T) {
	calls := 0
	open := func() (io.ReadCloser, error) {
		calls++
		if calls > 1 {
			return nil, fmt.Errorf("gone")
		}
		return io.NopCloser(strings.NewReader(sampleSWF)), nil
	}
	src, err := NewSWFSource(open, "flaky", 64, SWFFilter{})
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Reset(); err == nil {
		t.Fatal("Reset swallowed the reopen failure")
	}
}

// TestWriteSWFStreamUnknownLength: without a Counted source the MaxJobs
// header is omitted but the job lines are identical.
func TestWriteSWFStreamUnknownLength(t *testing.T) {
	tr := testTrace("u", 8, 0, 1, 2)
	var want bytes.Buffer
	if err := WriteSWF(&want, tr); err != nil {
		t.Fatal(err)
	}
	// Filter hides the length but passes everything through.
	var got bytes.Buffer
	n, err := WriteSWFStream(&got, Filter(tr.Source(), func(Job) bool { return true }))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("wrote %d jobs", n)
	}
	wantStr := strings.Replace(want.String(), "; MaxJobs: 3\n", "", 1)
	if got.String() != wantStr {
		t.Fatalf("streamed output differs:\n%s\nwant:\n%s", got.String(), wantStr)
	}
}
