package workload

import (
	"fmt"
	"math"
)

// JobSource streams a workload one job at a time in nondecreasing submit
// order, so consumers (the scheduler above all) never need the whole trace
// in memory: a million- or ten-million-job replay holds O(running jobs)
// live state instead of O(trace). Trace-backed code keeps working through
// the SliceSource adapter; generators and the incremental SWF reader
// implement the interface natively.
//
// Contract:
//   - Next returns jobs with nondecreasing Submit. The scheduler rejects a
//     source that regresses (materialize and sort through ParseSWF or
//     Collect for unsorted inputs).
//   - Next returning false means the stream ended — either exhausted or
//     failed; Err distinguishes (nil on clean exhaustion).
//   - Reset rewinds to the first job and clears Err, so one source can
//     back several simulation runs (policy vs baseline, sweep repeats).
type JobSource interface {
	// Name identifies the workload (trace or model name).
	Name() string
	// CPUs is the processor count of the system the workload targets.
	CPUs() int
	// Next returns the next job, or ok=false at end of stream or error.
	Next() (Job, bool)
	// Reset rewinds the source to its first job.
	Reset() error
	// Err returns the first error the stream hit, nil on clean exhaustion.
	Err() error
}

// Counted is implemented by sources that know their total job count
// upfront (generators, slices); WriteSWFStream uses it to emit the same
// MaxJobs header the materialized writer produces.
type Counted interface {
	// Len returns the total number of jobs the source will yield.
	Len() int
}

// PtrSource is implemented by sources whose jobs already live on the heap
// with stable identity (SliceSource). The scheduler prefers NextPtr to
// avoid re-allocating a Job per arrival when replaying materialized
// traces.
type PtrSource interface {
	NextPtr() (*Job, bool)
}

// SliceSource adapts a materialized job slice to the JobSource interface.
// It assumes the slice is already in nondecreasing submit order (as
// Trace.SortBySubmit, ParseSWF and the generators guarantee).
type SliceSource struct {
	name string
	cpus int
	jobs []*Job
	pos  int
}

var (
	_ JobSource = (*SliceSource)(nil)
	_ Counted   = (*SliceSource)(nil)
	_ PtrSource = (*SliceSource)(nil)
)

// NewSliceSource wraps a job slice as a source.
func NewSliceSource(name string, cpus int, jobs []*Job) *SliceSource {
	return &SliceSource{name: name, cpus: cpus, jobs: jobs}
}

// Source adapts the trace to the streaming interface. The trace must be
// submit-sorted (call SortBySubmit first if in doubt); jobs are shared,
// not copied.
func (t *Trace) Source() *SliceSource {
	return NewSliceSource(t.Name, t.CPUs, t.Jobs)
}

// Name implements JobSource.
func (s *SliceSource) Name() string { return s.name }

// CPUs implements JobSource.
func (s *SliceSource) CPUs() int { return s.cpus }

// Len implements Counted.
func (s *SliceSource) Len() int { return len(s.jobs) }

// Next implements JobSource.
func (s *SliceSource) Next() (Job, bool) {
	if s.pos >= len(s.jobs) {
		return Job{}, false
	}
	j := *s.jobs[s.pos]
	s.pos++
	return j, true
}

// NextPtr implements PtrSource, handing out the slice's own pointers.
func (s *SliceSource) NextPtr() (*Job, bool) {
	if s.pos >= len(s.jobs) {
		return nil, false
	}
	j := s.jobs[s.pos]
	s.pos++
	return j, true
}

// Reset implements JobSource.
func (s *SliceSource) Reset() error {
	s.pos = 0
	return nil
}

// Err implements JobSource; a slice never fails.
func (s *SliceSource) Err() error { return nil }

// Collect materializes a source into a Trace, consuming it from its
// current position. The inverse of Trace.Source; the resulting trace is
// sorted (streamed order is already submit order).
func Collect(src JobSource) (*Trace, error) {
	tr := &Trace{Name: src.Name(), CPUs: src.CPUs()}
	if c, ok := src.(Counted); ok {
		if n := c.Len(); n >= 0 {
			tr.Jobs = make([]*Job, 0, n)
		}
	}
	for {
		j, ok := src.Next()
		if !ok {
			break
		}
		cp := j
		tr.Jobs = append(tr.Jobs, &cp)
	}
	if err := src.Err(); err != nil {
		return nil, err
	}
	return tr, nil
}

// StatsOf computes the trace summary statistics in one streaming pass,
// consuming the source from its current position — the O(1)-memory
// counterpart of Trace.ComputeStats for workloads too large to hold.
func StatsOf(src JobSource) (Stats, error) {
	var s Stats
	cpus := src.CPUs()
	var first, last float64
	serial := 0
	var cpuSec, rtSum, procSum float64
	for {
		j, ok := src.Next()
		if !ok {
			break
		}
		if s.Jobs == 0 {
			first, last = j.Submit, j.Submit
		}
		if j.Submit < first {
			first = j.Submit
		}
		if j.Submit > last {
			last = j.Submit
		}
		cpuSec += float64(j.Procs) * j.EffectiveRuntime()
		rtSum += j.EffectiveRuntime()
		procSum += float64(j.Procs)
		if j.Procs == 1 {
			serial++
		}
		s.Jobs++
	}
	if err := src.Err(); err != nil {
		return Stats{}, err
	}
	if s.Jobs == 0 {
		return s, nil
	}
	s.TotalCPUHours = cpuSec / 3600
	s.Span = last - first
	if s.Span > 0 && cpus > 0 {
		s.Utilization = cpuSec / (float64(cpus) * s.Span)
	}
	s.SerialShare = float64(serial) / float64(s.Jobs)
	s.MeanRuntime = rtSum / float64(s.Jobs)
	s.MeanProcs = procSum / float64(s.Jobs)
	return s, nil
}

// --- combinators ----------------------------------------------------------

// filterSource drops jobs a predicate rejects; see Filter.
type filterSource struct {
	src  JobSource
	keep func(Job) bool
}

// Filter returns a source yielding only the jobs keep accepts. It is the
// streaming lift of the post-parse trace cleaners (RemoveFailed et al.):
// order, IDs and metadata pass through untouched.
func Filter(src JobSource, keep func(Job) bool) JobSource {
	return &filterSource{src: src, keep: keep}
}

// FilterStatus lifts the SWF status filter to any source, mirroring
// ParseSWFFiltered for streams that were produced unfiltered.
func FilterStatus(src JobSource, f SWFFilter) JobSource {
	return Filter(src, func(j Job) bool { return f.keep(j.Status) })
}

// DropFailed is the streaming counterpart of RemoveFailed: jobs whose SWF
// status marks them failed are skipped, unknown statuses are kept.
func DropFailed(src JobSource) JobSource {
	return FilterStatus(src, SWFFilter{DropFailed: true})
}

func (f *filterSource) Name() string { return f.src.Name() }
func (f *filterSource) CPUs() int    { return f.src.CPUs() }
func (f *filterSource) Err() error   { return f.src.Err() }
func (f *filterSource) Reset() error { return f.src.Reset() }

func (f *filterSource) Next() (Job, bool) {
	for {
		j, ok := f.src.Next()
		if !ok {
			return Job{}, false
		}
		if f.keep(j) {
			return j, true
		}
	}
}

// concatSource plays sources back to back; see Concat.
type concatSource struct {
	name    string
	cpus    int
	srcs    []JobSource
	cur     int
	entered bool    // current source rewound for its segment
	offset  float64 // time shift applied to the current source
	last    float64 // last emitted submit
	nextID  int
	err     error
}

var _ JobSource = (*concatSource)(nil)

// Concat replays the sources one after another as a single workload: each
// subsequent source is time-shifted by the last emitted submit — its own
// epoch, including any initial offset before its first job, is preserved
// on top of that shift — jobs are renumbered sequentially from 1 so IDs
// stay unique, and the system size is the maximum over the inputs. Every
// source is rewound as its segment begins, so one source may appear any
// number of times (Repeat is exactly that). Use it to compose
// multi-regime scenarios (e.g. a calibration segment followed by a
// stress segment) without materializing either part.
func Concat(name string, srcs ...JobSource) JobSource {
	cpus := 0
	for _, s := range srcs {
		if s.CPUs() > cpus {
			cpus = s.CPUs()
		}
	}
	return &concatSource{name: name, cpus: cpus, srcs: srcs}
}

// Repeat replays src n times back to back (resetting it between rounds)
// with the same time-shift and renumbering semantics as Concat — the
// cheapest way to stretch a calibrated workload model to an arbitrary
// horizon while holding O(1) memory.
func Repeat(src JobSource, n int) JobSource {
	srcs := make([]JobSource, n)
	for i := range srcs {
		srcs[i] = src
	}
	return &concatSource{
		name: fmt.Sprintf("%s.x%d", src.Name(), n),
		cpus: src.CPUs(),
		srcs: srcs,
	}
}

func (c *concatSource) Name() string { return c.name }
func (c *concatSource) CPUs() int    { return c.cpus }
func (c *concatSource) Err() error   { return c.err }

// Len implements Counted: the sum of the segment lengths, or -1 when any
// segment's length is unknown. Repeat aliases one source n times, so
// each occurrence is counted.
func (c *concatSource) Len() int {
	total := 0
	for _, s := range c.srcs {
		cnt, ok := s.(Counted)
		if !ok {
			return -1
		}
		n := cnt.Len()
		if n < 0 {
			return -1
		}
		total += n
	}
	return total
}

// Reset rewinds the concatenation; segment sources are rewound lazily as
// each segment begins (Next does), which also keeps a Repeat alias or a
// source appearing in several segments correct.
func (c *concatSource) Reset() error {
	c.cur, c.entered, c.offset, c.last, c.nextID, c.err = 0, false, 0, 0, 0, nil
	return nil
}

func (c *concatSource) Next() (Job, bool) {
	for c.err == nil && c.cur < len(c.srcs) {
		src := c.srcs[c.cur]
		if !c.entered {
			// Rewind the source as its segment begins: aliased sources
			// (Repeat, one source in several segments) were exhausted by
			// their previous segment, and after a Reset every segment
			// must replay from its start.
			if err := src.Reset(); err != nil {
				c.err = err
				return Job{}, false
			}
			c.entered = true
		}
		j, ok := src.Next()
		if !ok {
			if err := src.Err(); err != nil {
				c.err = err
				return Job{}, false
			}
			// Advance to the next segment, anchored at the last submit.
			c.cur++
			c.entered = false
			c.offset = c.last
			continue
		}
		c.nextID++
		j.ID = c.nextID
		j.Submit += c.offset
		c.last = j.Submit
		return j, true
	}
	return Job{}, false
}

// mergeSource interleaves sources by arrival; see MergeByArrival.
type mergeSource struct {
	name    string
	cpus    int
	srcs    []JobSource
	pending []Job  // one look-ahead job per source
	alive   []bool // pending[i] valid
	nextID  int
	err     error
	primed  bool
}

var _ JobSource = (*mergeSource)(nil)

// MergeByArrival interleaves several workloads into one by submit time —
// a k-way merge with ties broken by source position, so the result is
// deterministic and sorted whenever every input is. Jobs are renumbered
// sequentially from 1; the system size is the maximum over the inputs.
// It models consolidated centers: several machines' traffic replayed onto
// one shared system, at any scale, without materializing the union.
func MergeByArrival(name string, srcs ...JobSource) JobSource {
	cpus := 0
	for _, s := range srcs {
		if s.CPUs() > cpus {
			cpus = s.CPUs()
		}
	}
	return &mergeSource{
		name:    name,
		cpus:    cpus,
		srcs:    srcs,
		pending: make([]Job, len(srcs)),
		alive:   make([]bool, len(srcs)),
	}
}

func (m *mergeSource) Name() string { return m.name }
func (m *mergeSource) CPUs() int    { return m.cpus }
func (m *mergeSource) Err() error   { return m.err }

// Len implements Counted: the sum of the input lengths, or -1 when any
// input's length is unknown.
func (m *mergeSource) Len() int {
	total := 0
	for _, s := range m.srcs {
		cnt, ok := s.(Counted)
		if !ok {
			return -1
		}
		n := cnt.Len()
		if n < 0 {
			return -1
		}
		total += n
	}
	return total
}

func (m *mergeSource) Reset() error {
	for _, s := range m.srcs {
		if err := s.Reset(); err != nil {
			return err
		}
	}
	for i := range m.alive {
		m.alive[i] = false
	}
	m.nextID, m.err, m.primed = 0, nil, false
	return nil
}

// advance refills slot i's look-ahead from its source.
func (m *mergeSource) advance(i int) {
	j, ok := m.srcs[i].Next()
	if !ok {
		m.alive[i] = false
		if err := m.srcs[i].Err(); err != nil && m.err == nil {
			m.err = err
		}
		return
	}
	m.pending[i], m.alive[i] = j, true
}

func (m *mergeSource) Next() (Job, bool) {
	if !m.primed {
		m.primed = true
		for i := range m.srcs {
			m.advance(i)
		}
	}
	if m.err != nil {
		return Job{}, false
	}
	best := -1
	for i, ok := range m.alive {
		if ok && (best < 0 || m.pending[i].Submit < m.pending[best].Submit) {
			best = i
		}
	}
	if best < 0 {
		return Job{}, false
	}
	j := m.pending[best]
	m.advance(best)
	if m.err != nil {
		return Job{}, false
	}
	m.nextID++
	j.ID = m.nextID
	return j, true
}

// scaleSource rescales interarrival gaps; see Scale.
type scaleSource struct {
	src     JobSource
	factor  float64
	first   float64
	started bool
}

var _ JobSource = (*scaleSource)(nil)

// Scale multiplies the source's offered load by factor: interarrival gaps
// shrink by 1/factor, anchored at the first submit, exactly like the
// materialized ScaleLoad transform (factor > 1 compresses arrivals,
// raising utilization). Jobs themselves are untouched. factor must be
// positive.
func Scale(src JobSource, factor float64) (JobSource, error) {
	if !(factor > 0) || math.IsInf(factor, 1) {
		return nil, fmt.Errorf("workload: load scale factor %v is not a positive finite number", factor)
	}
	return &scaleSource{src: src, factor: factor}, nil
}

func (s *scaleSource) Name() string { return s.src.Name() }
func (s *scaleSource) CPUs() int    { return s.src.CPUs() }
func (s *scaleSource) Err() error   { return s.src.Err() }

// Len implements Counted when the input does.
func (s *scaleSource) Len() int {
	if c, ok := s.src.(Counted); ok {
		return c.Len()
	}
	return -1
}

func (s *scaleSource) Reset() error {
	s.started = false
	return s.src.Reset()
}

func (s *scaleSource) Next() (Job, bool) {
	j, ok := s.src.Next()
	if !ok {
		return Job{}, false
	}
	if !s.started {
		s.started = true
		s.first = j.Submit
	}
	j.Submit = s.first + (j.Submit-s.first)/s.factor
	return j, true
}
