package workload

import (
	"bytes"
	"testing"
)

func flurryTrace() *Trace {
	tr := &Trace{Name: "f", CPUs: 16}
	id := 0
	add := func(user int, submit float64) {
		id++
		tr.Jobs = append(tr.Jobs, &Job{
			ID: id, Submit: submit, Runtime: 10, Procs: 1, ReqTime: 20, Beta: -1, User: user,
		})
	}
	// User 0: a flurry of 10 jobs in 90 seconds.
	for i := 0; i < 10; i++ {
		add(0, float64(i*10))
	}
	// User 1: steady pace, 1 job per 1000 s.
	for i := 0; i < 5; i++ {
		add(1, float64(i*1000))
	}
	// Unknown user: must never be dropped.
	add(-1, 50)
	return tr
}

func TestRemoveFlurriesDropsBurstTail(t *testing.T) {
	tr := flurryTrace()
	cleaned, removed := RemoveFlurries(tr, CleanConfig{Window: 100, MaxJobsPerUser: 3})
	// User 0 submitted 10 jobs within 90 s: the first 3 stay, 7 go.
	if removed != 7 {
		t.Fatalf("removed = %d, want 7", removed)
	}
	count := map[int]int{}
	for _, j := range cleaned.Jobs {
		count[j.User]++
	}
	if count[0] != 3 {
		t.Errorf("user 0 kept %d, want 3", count[0])
	}
	if count[1] != 5 {
		t.Errorf("user 1 kept %d, want 5 (steady user untouched)", count[1])
	}
	if count[-1] != 1 {
		t.Errorf("unknown-user job dropped")
	}
}

func TestRemoveFlurriesSlidingWindow(t *testing.T) {
	tr := &Trace{Name: "w", CPUs: 4}
	// 2 jobs at t=0, 2 at t=200: with window 100 and max 2, all stay.
	for i, s := range []float64{0, 1, 200, 201} {
		tr.Jobs = append(tr.Jobs, &Job{ID: i + 1, Submit: s, Runtime: 1, Procs: 1, ReqTime: 1, User: 7})
	}
	_, removed := RemoveFlurries(tr, CleanConfig{Window: 100, MaxJobsPerUser: 2})
	if removed != 0 {
		t.Errorf("removed = %d, want 0 (bursts in separate windows)", removed)
	}
	// With window 300 the four jobs share one window: two are dropped.
	_, removed = RemoveFlurries(tr, CleanConfig{Window: 300, MaxJobsPerUser: 2})
	if removed != 2 {
		t.Errorf("removed = %d, want 2", removed)
	}
}

func TestRemoveFlurriesDisabled(t *testing.T) {
	tr := flurryTrace()
	cleaned, removed := RemoveFlurries(tr, CleanConfig{})
	if removed != 0 || len(cleaned.Jobs) != len(tr.Jobs) {
		t.Error("zero config should be a no-op copy")
	}
	// The copy must be independent.
	cleaned.Jobs = cleaned.Jobs[:0]
	if len(tr.Jobs) == 0 {
		t.Error("original trace mutated")
	}
}

func TestRemoveFlurriesPreservesOrderAndOriginal(t *testing.T) {
	tr := flurryTrace()
	before := len(tr.Jobs)
	cleaned, _ := RemoveFlurries(tr, DefaultCleanConfig())
	if len(tr.Jobs) != before {
		t.Error("original trace mutated")
	}
	for i := 1; i < len(cleaned.Jobs); i++ {
		if cleaned.Jobs[i].ID < cleaned.Jobs[i-1].ID {
			t.Fatal("cleaning reordered jobs")
		}
	}
}

func TestSWFUserRoundTrip(t *testing.T) {
	tr := &Trace{Name: "u", CPUs: 8, Jobs: []*Job{
		{ID: 1, Submit: 0, Runtime: 10, Procs: 1, ReqTime: 20, Beta: -1, User: 42},
		{ID: 2, Submit: 5, Runtime: 10, Procs: 1, ReqTime: 20, Beta: -1, User: -1},
	}}
	var buf bytes.Buffer
	if err := WriteSWF(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ParseSWF(&buf, "u", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Jobs[0].User != 42 {
		t.Errorf("user = %d, want 42", got.Jobs[0].User)
	}
	if got.Jobs[1].User != -1 {
		t.Errorf("unknown user = %d, want -1", got.Jobs[1].User)
	}
}

func TestScaleLoad(t *testing.T) {
	tr := &Trace{Name: "s", CPUs: 4, Jobs: []*Job{
		{ID: 1, Submit: 100, Runtime: 10, Procs: 1, ReqTime: 10},
		{ID: 2, Submit: 300, Runtime: 10, Procs: 1, ReqTime: 10},
		{ID: 3, Submit: 500, Runtime: 10, Procs: 1, ReqTime: 10},
	}}
	scaled := ScaleLoad(tr, 2)
	// Gaps halve: 100, 200, 300.
	want := []float64{100, 200, 300}
	for i, w := range want {
		if scaled.Jobs[i].Submit != w {
			t.Errorf("job %d submit = %v, want %v", i, scaled.Jobs[i].Submit, w)
		}
	}
	// The original trace must be untouched and jobs independent.
	if tr.Jobs[1].Submit != 300 {
		t.Error("ScaleLoad mutated its input")
	}
	scaled.Jobs[0].Runtime = 999
	if tr.Jobs[0].Runtime != 10 {
		t.Error("ScaleLoad shares job pointers with input")
	}
}

func TestScaleLoadDegenerate(t *testing.T) {
	tr := &Trace{Name: "d", CPUs: 4, Jobs: []*Job{{ID: 1, Submit: 50, Runtime: 1, Procs: 1, ReqTime: 1}}}
	if got := ScaleLoad(tr, 0); got.Jobs[0].Submit != 50 {
		t.Error("zero factor should copy unchanged")
	}
	if got := ScaleLoad(&Trace{Name: "e", CPUs: 4}, 2); len(got.Jobs) != 0 {
		t.Error("empty trace scaling")
	}
}

func TestRemoveFailed(t *testing.T) {
	tr := &Trace{Name: "rf", CPUs: 8, Jobs: []*Job{
		{ID: 1, Runtime: 10, Procs: 1, ReqTime: 10, Status: StatusCompleted},
		{ID: 2, Runtime: 10, Procs: 1, ReqTime: 10, Status: StatusFailed},
		{ID: 3, Runtime: 10, Procs: 1, ReqTime: 10, Status: StatusUnknown},
		{ID: 4, Runtime: 10, Procs: 1, ReqTime: 10, Status: StatusCanceled},
		{ID: 5, Runtime: 10, Procs: 1, ReqTime: 10, Status: StatusFailed},
	}}
	out, removed := RemoveFailed(tr)
	if removed != 2 {
		t.Errorf("removed = %d, want 2", removed)
	}
	want := []int{1, 3, 4}
	if len(out.Jobs) != len(want) {
		t.Fatalf("kept %d jobs, want %d", len(out.Jobs), len(want))
	}
	for i, j := range out.Jobs {
		if j.ID != want[i] {
			t.Errorf("kept[%d] = job %d, want %d", i, j.ID, want[i])
		}
	}
	if len(tr.Jobs) != 5 {
		t.Error("input trace mutated")
	}
}
