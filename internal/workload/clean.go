package workload

import "sort"

// The Parallel Workload Archive publishes "cleaned" versions of its logs
// with flurries removed: bursts of activity by a single user that are not
// representative of normal usage and can dominate scheduling metrics. The
// paper simulates cleaned traces, so the same preprocessing is provided
// here for users feeding raw logs in.

// CleanConfig parameterizes flurry removal.
type CleanConfig struct {
	// Window is the sliding time window in seconds.
	Window float64
	// MaxJobsPerUser is the largest number of jobs one user may submit
	// inside any window; excess jobs are flagged as flurry members.
	MaxJobsPerUser int
}

// DefaultCleanConfig mirrors the archive's heuristic scale: more than a
// hundred jobs by one user within an hour is a flurry.
func DefaultCleanConfig() CleanConfig {
	return CleanConfig{Window: 3600, MaxJobsPerUser: 100}
}

// RemoveFlurries returns a copy of the trace without flurry jobs and the
// number of jobs removed. Jobs with unknown user (-1) are never removed.
// Within a window the earliest MaxJobsPerUser jobs are kept, matching the
// archive convention of trimming the burst's tail.
func RemoveFlurries(t *Trace, cfg CleanConfig) (*Trace, int) {
	if cfg.Window <= 0 || cfg.MaxJobsPerUser <= 0 {
		return &Trace{Name: t.Name, CPUs: t.CPUs, Jobs: append([]*Job(nil), t.Jobs...)}, 0
	}
	byUser := make(map[int][]*Job)
	for _, j := range t.Jobs {
		if j.User >= 0 {
			byUser[j.User] = append(byUser[j.User], j)
		}
	}
	drop := make(map[*Job]bool)
	for _, jobs := range byUser {
		sort.SliceStable(jobs, func(a, b int) bool { return jobs[a].Submit < jobs[b].Submit })
		lo := 0
		kept := 0 // jobs kept in the current window [submit[lo], submit[i]]
		for i, j := range jobs {
			for jobs[i].Submit-jobs[lo].Submit > cfg.Window {
				if !drop[jobs[lo]] {
					kept--
				}
				lo++
			}
			if kept >= cfg.MaxJobsPerUser {
				drop[j] = true
			} else {
				kept++
			}
		}
	}
	out := &Trace{Name: t.Name, CPUs: t.CPUs}
	removed := 0
	for _, j := range t.Jobs {
		if drop[j] {
			removed++
			continue
		}
		out.Jobs = append(out.Jobs, j)
	}
	return out, removed
}

// RemoveFailed returns a copy of the trace without jobs whose SWF status
// marks them failed (status 0), plus the number removed. Failed jobs'
// recorded runtimes measure time-to-crash, not useful work, so cleaned
// replays usually exclude them; jobs with unknown status are kept. It is
// the post-parse counterpart of SWFFilter{DropFailed: true} for traces
// that were loaded unfiltered.
func RemoveFailed(t *Trace) (*Trace, int) {
	out := &Trace{Name: t.Name, CPUs: t.CPUs}
	removed := 0
	for _, j := range t.Jobs {
		if j.Status == StatusFailed {
			removed++
			continue
		}
		out.Jobs = append(out.Jobs, j)
	}
	return out, removed
}

// ScaleLoad returns a copy of the trace with the offered load multiplied
// by factor: interarrival gaps shrink by 1/factor (factor > 1 compresses
// arrivals, raising utilization). Jobs themselves are copied so the input
// trace stays usable. This is the standard sensitivity transform of the
// job scheduling literature.
func ScaleLoad(t *Trace, factor float64) *Trace {
	out := &Trace{Name: t.Name, CPUs: t.CPUs, Jobs: make([]*Job, len(t.Jobs))}
	if len(t.Jobs) == 0 || factor <= 0 {
		for i, j := range t.Jobs {
			cp := *j
			out.Jobs[i] = &cp
		}
		return out
	}
	first := t.Jobs[0].Submit
	for i, j := range t.Jobs {
		cp := *j
		cp.Submit = first + (j.Submit-first)/factor
		out.Jobs[i] = &cp
	}
	return out
}
