package workload

import (
	"math"
	"strings"
	"testing"
)

// testTrace builds a small sorted trace for source tests.
func testTrace(name string, cpus int, submits ...float64) *Trace {
	tr := &Trace{Name: name, CPUs: cpus}
	for i, s := range submits {
		tr.Jobs = append(tr.Jobs, &Job{
			ID: i + 1, Submit: s, Runtime: 100, Procs: 1 + i%cpus, ReqTime: 200,
			Beta: -1, User: -1, Status: StatusCompleted,
		})
	}
	tr.SortBySubmit()
	return tr
}

func drain(t *testing.T, src JobSource) []Job {
	t.Helper()
	var out []Job
	for {
		j, ok := src.Next()
		if !ok {
			break
		}
		out = append(out, j)
	}
	if err := src.Err(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	return out
}

func TestSliceSourceRoundTrip(t *testing.T) {
	tr := testTrace("rt", 4, 0, 5, 5, 12)
	src := tr.Source()
	if src.Name() != "rt" || src.CPUs() != 4 || src.Len() != 4 {
		t.Fatalf("metadata %s/%d/%d", src.Name(), src.CPUs(), src.Len())
	}
	got := drain(t, src)
	if len(got) != len(tr.Jobs) {
		t.Fatalf("drained %d jobs, want %d", len(got), len(tr.Jobs))
	}
	for i, j := range got {
		if j != *tr.Jobs[i] {
			t.Fatalf("job %d: %+v, want %+v", i, j, *tr.Jobs[i])
		}
	}
	// Reset and collect back into a trace.
	if err := src.Reset(); err != nil {
		t.Fatal(err)
	}
	back, err := Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != tr.Name || back.CPUs != tr.CPUs || len(back.Jobs) != len(tr.Jobs) {
		t.Fatalf("collected %s/%d/%d jobs", back.Name, back.CPUs, len(back.Jobs))
	}
	for i := range back.Jobs {
		if *back.Jobs[i] != *tr.Jobs[i] {
			t.Fatalf("collected job %d differs", i)
		}
	}
}

func TestSliceSourceNextPtrIdentity(t *testing.T) {
	tr := testTrace("ptr", 2, 0, 1)
	src := tr.Source()
	j, ok := src.NextPtr()
	if !ok || j != tr.Jobs[0] {
		t.Fatal("NextPtr does not hand out the slice's own pointers")
	}
}

func TestStatsOfMatchesComputeStats(t *testing.T) {
	tr := testTrace("stats", 8, 0, 10, 20, 35, 500)
	tr.Jobs[2].Procs = 1 // a serial job
	want := tr.ComputeStats()
	got, err := StatsOf(tr.Source())
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("StatsOf = %+v, want %+v", got, want)
	}
}

func TestFilterMatchesRemoveFailed(t *testing.T) {
	tr := testTrace("filt", 4, 0, 1, 2, 3, 4, 5)
	tr.Jobs[1].Status = StatusFailed
	tr.Jobs[4].Status = StatusFailed
	tr.Jobs[2].Status = StatusCanceled
	want, removed := RemoveFailed(tr)
	if removed != 2 {
		t.Fatalf("RemoveFailed removed %d", removed)
	}
	got := drain(t, DropFailed(tr.Source()))
	if len(got) != len(want.Jobs) {
		t.Fatalf("DropFailed kept %d jobs, want %d", len(got), len(want.Jobs))
	}
	for i := range got {
		if got[i] != *want.Jobs[i] {
			t.Fatalf("job %d: %+v, want %+v", i, got[i], *want.Jobs[i])
		}
	}
	// FilterStatus with both drops removes the canceled job too.
	both := drain(t, FilterStatus(tr.Source(), SWFFilter{DropFailed: true, DropCanceled: true}))
	if len(both) != 3 {
		t.Fatalf("full filter kept %d jobs, want 3", len(both))
	}
}

func TestConcatShiftsRenumbersAndResets(t *testing.T) {
	a := testTrace("a", 4, 0, 10, 20)
	b := testTrace("b", 8, 5, 7)
	src := Concat("a+b", a.Source(), b.Source())
	if src.CPUs() != 8 {
		t.Fatalf("CPUs = %d, want max 8", src.CPUs())
	}
	if c, ok := src.(Counted); !ok || c.Len() != 5 {
		t.Fatalf("Len missing or wrong")
	}
	jobs := drain(t, src)
	if len(jobs) != 5 {
		t.Fatalf("drained %d jobs", len(jobs))
	}
	wantSubmits := []float64{0, 10, 20, 25, 27} // b shifted by a's last submit
	for i, j := range jobs {
		if j.ID != i+1 {
			t.Fatalf("job %d renumbered to %d", i, j.ID)
		}
		if j.Submit != wantSubmits[i] {
			t.Fatalf("job %d submit %v, want %v", i, j.Submit, wantSubmits[i])
		}
	}
	// Reset replays identically.
	if err := src.Reset(); err != nil {
		t.Fatal(err)
	}
	again := drain(t, src)
	for i := range jobs {
		if again[i] != jobs[i] {
			t.Fatalf("replay job %d differs", i)
		}
	}
}

func TestRepeatReplaysWithShift(t *testing.T) {
	a := testTrace("a", 2, 0, 4)
	src := Repeat(a.Source(), 3)
	if c, ok := src.(Counted); !ok || c.Len() != 6 {
		t.Fatal("Repeat Len wrong")
	}
	jobs := drain(t, src)
	wantSubmits := []float64{0, 4, 4, 8, 8, 12}
	if len(jobs) != 6 {
		t.Fatalf("drained %d jobs", len(jobs))
	}
	for i, j := range jobs {
		if j.ID != i+1 || j.Submit != wantSubmits[i] {
			t.Fatalf("job %d = id %d at %v, want id %d at %v", i, j.ID, j.Submit, i+1, wantSubmits[i])
		}
	}
}

func TestMergeByArrival(t *testing.T) {
	a := testTrace("a", 4, 0, 10, 20)
	b := testTrace("b", 16, 5, 10, 30)
	src := MergeByArrival("a|b", a.Source(), b.Source())
	if src.CPUs() != 16 {
		t.Fatalf("CPUs = %d", src.CPUs())
	}
	jobs := drain(t, src)
	wantSubmits := []float64{0, 5, 10, 10, 20, 30}
	wantProcs := []int{1, 1, 2, 2, 3, 3} // ties go to the earlier source (a first)
	if len(jobs) != 6 {
		t.Fatalf("drained %d jobs", len(jobs))
	}
	for i, j := range jobs {
		if j.ID != i+1 {
			t.Fatalf("job %d renumbered to %d", i, j.ID)
		}
		if j.Submit != wantSubmits[i] {
			t.Fatalf("job %d submit %v, want %v", i, j.Submit, wantSubmits[i])
		}
		if j.Procs != wantProcs[i] {
			t.Fatalf("job %d procs %d, want %d (tie order)", i, j.Procs, wantProcs[i])
		}
	}
	// Reset replays identically.
	if err := src.Reset(); err != nil {
		t.Fatal(err)
	}
	again := drain(t, src)
	for i := range jobs {
		if again[i] != jobs[i] {
			t.Fatalf("replay job %d differs", i)
		}
	}
}

func TestScaleMatchesScaleLoad(t *testing.T) {
	tr := testTrace("sc", 4, 3, 10, 20, 100)
	want := ScaleLoad(tr, 2)
	src, err := Scale(tr.Source(), 2)
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, src)
	for i := range got {
		if got[i] != *want.Jobs[i] {
			t.Fatalf("job %d: %+v, want %+v", i, got[i], *want.Jobs[i])
		}
	}
	if _, err := Scale(tr.Source(), 0); err == nil {
		t.Fatal("Scale accepted factor 0")
	}
	if _, err := Scale(tr.Source(), math.Inf(1)); err == nil {
		t.Fatal("Scale accepted +Inf")
	}
}

// TestConcatNonConsecutiveAlias: the same source may appear in several
// (not necessarily adjacent) segments; each segment replays it from the
// start, and Reset rewinds the whole concatenation including later
// distinct sources.
func TestConcatNonConsecutiveAlias(t *testing.T) {
	a := testTrace("a", 2, 0, 4).Source()
	b := testTrace("b", 2, 1).Source()
	src := Concat("aba", a, b, a)
	if c, ok := src.(Counted); !ok || c.Len() != 5 {
		t.Fatalf("Len = %v, want 5", src.(Counted).Len())
	}
	jobs := drain(t, src)
	wantSubmits := []float64{0, 4, 5, 5, 9} // a(0,4), b shifted to 5, a again shifted to 5
	if len(jobs) != 5 {
		t.Fatalf("drained %d jobs, want 5 (aliased segment dropped?)", len(jobs))
	}
	for i, j := range jobs {
		if j.ID != i+1 || j.Submit != wantSubmits[i] {
			t.Fatalf("job %d = id %d at %v, want id %d at %v", i, j.ID, j.Submit, i+1, wantSubmits[i])
		}
	}
	// A full Reset must replay the identical sequence (including b, which
	// a naive reset-first-source-only would leave exhausted).
	if err := src.Reset(); err != nil {
		t.Fatal(err)
	}
	again := drain(t, src)
	if len(again) != len(jobs) {
		t.Fatalf("replay yielded %d jobs, want %d", len(again), len(jobs))
	}
	for i := range jobs {
		if again[i] != jobs[i] {
			t.Fatalf("replay job %d differs", i)
		}
	}
}

// TestUnknownLengthPropagation: a Counted wrapper over a non-Counted
// input reports -1, aggregates propagate the sentinel instead of summing
// it, Collect does not trust it, and the streaming writer omits MaxJobs.
func TestUnknownLengthPropagation(t *testing.T) {
	tr := testTrace("u", 2, 0, 1, 2)
	hidden := Filter(tr.Source(), func(Job) bool { return true }) // not Counted
	scaled, err := Scale(hidden, 2)
	if err != nil {
		t.Fatal(err)
	}
	if n := scaled.(Counted).Len(); n != -1 {
		t.Fatalf("Scale over unknown length: Len = %d, want -1", n)
	}
	cat := Concat("c", tr.Source(), mustScale(t, Filter(tr.Source(), func(Job) bool { return true }), 2))
	if n := cat.(Counted).Len(); n != -1 {
		t.Fatalf("Concat with unknown segment: Len = %d, want -1", n)
	}
	mrg := MergeByArrival("m", tr.Source(), mustScale(t, Filter(tr.Source(), func(Job) bool { return true }), 2))
	if n := mrg.(Counted).Len(); n != -1 {
		t.Fatalf("Merge with unknown input: Len = %d, want -1", n)
	}
	// Collect must not panic on the -1 capacity hint.
	got, err := Collect(scaled)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Jobs) != 3 {
		t.Fatalf("collected %d jobs, want 3", len(got.Jobs))
	}
	// The streaming writer omits the MaxJobs header rather than lying.
	if err := scaled.Reset(); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if _, err := WriteSWFStream(&buf, scaled); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "MaxJobs") {
		t.Fatalf("unknown-length stream wrote a MaxJobs header:\n%s", buf.String())
	}
}

func mustScale(t *testing.T, src JobSource, f float64) JobSource {
	t.Helper()
	s, err := Scale(src, f)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
