package workload

import (
	"bytes"
	"strings"
	"testing"
)

const sampleSWF = `; Sample workload
; MaxProcs: 64
; MaxJobs: 4
1 0 -1 120 4 -1 -1 4 300 -1 1 -1 -1 -1 -1 -1 -1 -1
2 60 -1 600 -1 -1 -1 8 900 -1 1 -1 -1 -1 -1 -1 -1 -1
3 90 -1 -1 2 -1 -1 2 100 -1 0 -1 -1 -1 -1 -1 -1 -1
4 120 -1 50 1 -1 -1 -1 -1 -1 1 -1 -1 -1 -1 -1 -1 -1
`

func TestParseSWF(t *testing.T) {
	tr, err := ParseSWF(strings.NewReader(sampleSWF), "sample", 0)
	if err != nil {
		t.Fatalf("ParseSWF: %v", err)
	}
	if tr.CPUs != 64 {
		t.Errorf("CPUs = %d, want 64 from MaxProcs header", tr.CPUs)
	}
	// Job 3 has runtime -1 and must be cleaned out.
	if len(tr.Jobs) != 3 {
		t.Fatalf("parsed %d jobs, want 3", len(tr.Jobs))
	}
	j1 := tr.Jobs[0]
	if j1.ID != 1 || j1.Submit != 0 || j1.Runtime != 120 || j1.Procs != 4 || j1.ReqTime != 300 {
		t.Errorf("job 1 = %+v", j1)
	}
	// Job 2: requested procs (field 8) preferred over allocated (-1).
	if tr.Jobs[1].Procs != 8 {
		t.Errorf("job 2 procs = %d, want 8", tr.Jobs[1].Procs)
	}
	// Job 4: no requested procs -> allocated; no requested time -> runtime.
	j4 := tr.Jobs[2]
	if j4.Procs != 1 || j4.ReqTime != 50 {
		t.Errorf("job 4 = %+v, want procs=1 reqtime=50", j4)
	}
}

func TestParseSWFExplicitCPUs(t *testing.T) {
	in := "1 0 -1 10 2 -1 -1 2 20 -1 1 -1 -1 -1 -1 -1 -1 -1\n"
	tr, err := ParseSWF(strings.NewReader(in), "x", 16)
	if err != nil {
		t.Fatalf("ParseSWF: %v", err)
	}
	if tr.CPUs != 16 {
		t.Errorf("CPUs = %d, want 16 from argument", tr.CPUs)
	}
}

func TestParseSWFNoSystemSize(t *testing.T) {
	in := "1 0 -1 10 2 -1 -1 2 20 -1 1 -1 -1 -1 -1 -1 -1 -1\n"
	if _, err := ParseSWF(strings.NewReader(in), "x", 0); err == nil {
		t.Error("expected error when system size is unknown")
	}
}

func TestParseSWFMalformed(t *testing.T) {
	cases := []string{
		"1 2 3\n",                  // too few fields
		"a b c d e f g h i\n",      // non-numeric
		"1 0 -1 10 x -1 -1 2 20\n", // non-numeric field
	}
	for _, in := range cases {
		if _, err := ParseSWF(strings.NewReader(in), "bad", 8); err == nil {
			t.Errorf("malformed input accepted: %q", in)
		}
	}
}

func TestParseSWFSortsBySubmit(t *testing.T) {
	in := `; MaxProcs: 8
2 100 -1 10 1 -1 -1 1 20 -1 1 -1 -1 -1 -1 -1 -1 -1
1 50 -1 10 1 -1 -1 1 20 -1 1 -1 -1 -1 -1 -1 -1 -1
`
	tr, err := ParseSWF(strings.NewReader(in), "x", 0)
	if err != nil {
		t.Fatalf("ParseSWF: %v", err)
	}
	if tr.Jobs[0].ID != 1 {
		t.Error("jobs not sorted by submit time")
	}
}

func TestSWFRoundTrip(t *testing.T) {
	orig := &Trace{Name: "rt", CPUs: 32, Jobs: []*Job{
		{ID: 1, Submit: 0, Runtime: 100, Procs: 4, ReqTime: 200, Beta: -1},
		{ID: 2, Submit: 3600, Runtime: 7200, Procs: 16, ReqTime: 7200, Beta: -1},
	}}
	var buf bytes.Buffer
	if err := WriteSWF(&buf, orig); err != nil {
		t.Fatalf("WriteSWF: %v", err)
	}
	got, err := ParseSWF(&buf, "rt", 0)
	if err != nil {
		t.Fatalf("ParseSWF: %v", err)
	}
	if got.CPUs != orig.CPUs {
		t.Errorf("CPUs = %d, want %d", got.CPUs, orig.CPUs)
	}
	if len(got.Jobs) != len(orig.Jobs) {
		t.Fatalf("jobs = %d, want %d", len(got.Jobs), len(orig.Jobs))
	}
	for i, j := range got.Jobs {
		o := orig.Jobs[i]
		if j.ID != o.ID || j.Submit != o.Submit || j.Runtime != o.Runtime ||
			j.Procs != o.Procs || j.ReqTime != o.ReqTime {
			t.Errorf("job %d = %+v, want %+v", i, j, o)
		}
	}
}

func TestSWFHeaderParsing(t *testing.T) {
	if v, ok := swfHeaderInt("; MaxProcs: 128", "MaxProcs"); !ok || v != 128 {
		t.Errorf("header parse = %d,%v", v, ok)
	}
	if v, ok := swfHeaderInt(";MaxProcs:64", "MaxProcs"); !ok || v != 64 {
		t.Errorf("compact header parse = %d,%v", v, ok)
	}
	if _, ok := swfHeaderInt("; Computer: IBM SP2", "MaxProcs"); ok {
		t.Error("unrelated header matched")
	}
	if _, ok := swfHeaderInt("; MaxProcs: lots", "MaxProcs"); ok {
		t.Error("non-numeric header value accepted")
	}
}
