package workload

import (
	"bytes"
	"strings"
	"testing"
)

const sampleSWF = `; Sample workload
; MaxProcs: 64
; MaxJobs: 4
1 0 -1 120 4 -1 -1 4 300 -1 1 -1 -1 -1 -1 -1 -1 -1
2 60 -1 600 -1 -1 -1 8 900 -1 1 -1 -1 -1 -1 -1 -1 -1
3 90 -1 -1 2 -1 -1 2 100 -1 0 -1 -1 -1 -1 -1 -1 -1
4 120 -1 50 1 -1 -1 -1 -1 -1 1 -1 -1 -1 -1 -1 -1 -1
`

func TestParseSWF(t *testing.T) {
	tr, err := ParseSWF(strings.NewReader(sampleSWF), "sample", 0)
	if err != nil {
		t.Fatalf("ParseSWF: %v", err)
	}
	if tr.CPUs != 64 {
		t.Errorf("CPUs = %d, want 64 from MaxProcs header", tr.CPUs)
	}
	// Job 3 has runtime -1 and must be cleaned out.
	if len(tr.Jobs) != 3 {
		t.Fatalf("parsed %d jobs, want 3", len(tr.Jobs))
	}
	j1 := tr.Jobs[0]
	if j1.ID != 1 || j1.Submit != 0 || j1.Runtime != 120 || j1.Procs != 4 || j1.ReqTime != 300 {
		t.Errorf("job 1 = %+v", j1)
	}
	// Job 2: requested procs (field 8) preferred over allocated (-1).
	if tr.Jobs[1].Procs != 8 {
		t.Errorf("job 2 procs = %d, want 8", tr.Jobs[1].Procs)
	}
	// Job 4: no requested procs -> allocated; no requested time -> runtime.
	j4 := tr.Jobs[2]
	if j4.Procs != 1 || j4.ReqTime != 50 {
		t.Errorf("job 4 = %+v, want procs=1 reqtime=50", j4)
	}
}

func TestParseSWFExplicitCPUs(t *testing.T) {
	in := "1 0 -1 10 2 -1 -1 2 20 -1 1 -1 -1 -1 -1 -1 -1 -1\n"
	tr, err := ParseSWF(strings.NewReader(in), "x", 16)
	if err != nil {
		t.Fatalf("ParseSWF: %v", err)
	}
	if tr.CPUs != 16 {
		t.Errorf("CPUs = %d, want 16 from argument", tr.CPUs)
	}
}

func TestParseSWFNoSystemSize(t *testing.T) {
	in := "1 0 -1 10 2 -1 -1 2 20 -1 1 -1 -1 -1 -1 -1 -1 -1\n"
	if _, err := ParseSWF(strings.NewReader(in), "x", 0); err == nil {
		t.Error("expected error when system size is unknown")
	}
}

func TestParseSWFMalformed(t *testing.T) {
	cases := []string{
		"1 2 3\n",                  // too few fields
		"a b c d e f g h i\n",      // non-numeric
		"1 0 -1 10 x -1 -1 2 20\n", // non-numeric field
	}
	for _, in := range cases {
		if _, err := ParseSWF(strings.NewReader(in), "bad", 8); err == nil {
			t.Errorf("malformed input accepted: %q", in)
		}
	}
}

func TestParseSWFSortsBySubmit(t *testing.T) {
	in := `; MaxProcs: 8
2 100 -1 10 1 -1 -1 1 20 -1 1 -1 -1 -1 -1 -1 -1 -1
1 50 -1 10 1 -1 -1 1 20 -1 1 -1 -1 -1 -1 -1 -1 -1
`
	tr, err := ParseSWF(strings.NewReader(in), "x", 0)
	if err != nil {
		t.Fatalf("ParseSWF: %v", err)
	}
	if tr.Jobs[0].ID != 1 {
		t.Error("jobs not sorted by submit time")
	}
}

func TestSWFRoundTrip(t *testing.T) {
	orig := &Trace{Name: "rt", CPUs: 32, Jobs: []*Job{
		{ID: 1, Submit: 0, Runtime: 100, Procs: 4, ReqTime: 200, Beta: -1},
		{ID: 2, Submit: 3600, Runtime: 7200, Procs: 16, ReqTime: 7200, Beta: -1},
	}}
	var buf bytes.Buffer
	if err := WriteSWF(&buf, orig); err != nil {
		t.Fatalf("WriteSWF: %v", err)
	}
	got, err := ParseSWF(&buf, "rt", 0)
	if err != nil {
		t.Fatalf("ParseSWF: %v", err)
	}
	if got.CPUs != orig.CPUs {
		t.Errorf("CPUs = %d, want %d", got.CPUs, orig.CPUs)
	}
	if len(got.Jobs) != len(orig.Jobs) {
		t.Fatalf("jobs = %d, want %d", len(got.Jobs), len(orig.Jobs))
	}
	for i, j := range got.Jobs {
		o := orig.Jobs[i]
		if j.ID != o.ID || j.Submit != o.Submit || j.Runtime != o.Runtime ||
			j.Procs != o.Procs || j.ReqTime != o.ReqTime {
			t.Errorf("job %d = %+v, want %+v", i, j, o)
		}
	}
}

func TestSWFHeaderParsing(t *testing.T) {
	if v, ok := swfHeaderInt("; MaxProcs: 128", "MaxProcs"); !ok || v != 128 {
		t.Errorf("header parse = %d,%v", v, ok)
	}
	if v, ok := swfHeaderInt(";MaxProcs:64", "MaxProcs"); !ok || v != 64 {
		t.Errorf("compact header parse = %d,%v", v, ok)
	}
	if _, ok := swfHeaderInt("; Computer: IBM SP2", "MaxProcs"); ok {
		t.Error("unrelated header matched")
	}
	if _, ok := swfHeaderInt("; MaxProcs: lots", "MaxProcs"); ok {
		t.Error("non-numeric header value accepted")
	}
}

// The SWF status (field 11) is parsed, preserved by WriteSWF, and drives
// the opt-in replay filter; the package doc has always listed it as
// relevant, but the seed parser never read it.
func TestSWFStatusParsedAndFiltered(t *testing.T) {
	const log = `; MaxProcs: 64
1 0 -1 100 4 -1 -1 4 200 -1 1 7 -1 -1 -1 -1 -1 -1
2 10 -1 50 2 -1 -1 2 100 -1 0 7 -1 -1 -1 -1 -1 -1
3 20 -1 60 2 -1 -1 2 100 -1 5 8 -1 -1 -1 -1 -1 -1
4 30 -1 70 2 -1 -1 2 100 -1 -1 8 -1 -1 -1 -1 -1 -1
`
	raw, err := ParseSWF(strings.NewReader(log), "status", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw.Jobs) != 4 {
		t.Fatalf("unfiltered parse kept %d jobs, want 4", len(raw.Jobs))
	}
	wantStatus := []int{StatusCompleted, StatusFailed, StatusCanceled, StatusUnknown}
	for i, j := range raw.Jobs {
		if j.Status != wantStatus[i] {
			t.Errorf("job %d status = %d, want %d", j.ID, j.Status, wantStatus[i])
		}
	}

	noFailed, err := ParseSWFFiltered(strings.NewReader(log), "status", 0, SWFFilter{DropFailed: true})
	if err != nil {
		t.Fatal(err)
	}
	if ids := jobIDs(noFailed); !equalInts(ids, []int{1, 3, 4}) {
		t.Errorf("DropFailed kept %v, want [1 3 4]", ids)
	}
	neither, err := ParseSWFFiltered(strings.NewReader(log), "status", 0,
		SWFFilter{DropFailed: true, DropCanceled: true})
	if err != nil {
		t.Fatal(err)
	}
	if ids := jobIDs(neither); !equalInts(ids, []int{1, 4}) {
		t.Errorf("DropFailed+DropCanceled kept %v, want [1 4]", ids)
	}
}

func jobIDs(t *Trace) []int {
	ids := make([]int, len(t.Jobs))
	for i, j := range t.Jobs {
		ids[i] = j.ID
	}
	return ids
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Statuses survive a write/parse/write cycle bit-for-bit, and a filtered
// reparse of written output drops exactly the failed jobs.
func TestSWFStatusRoundTrip(t *testing.T) {
	orig := &Trace{Name: "rt", CPUs: 32, Jobs: []*Job{
		{ID: 1, Submit: 0, Runtime: 100, Procs: 4, ReqTime: 200, Beta: -1, User: -1, Status: StatusCompleted},
		{ID: 2, Submit: 60, Runtime: 50, Procs: 2, ReqTime: 100, Beta: -1, User: 3, Status: StatusFailed},
		{ID: 3, Submit: 120, Runtime: 70, Procs: 2, ReqTime: 100, Beta: -1, User: 3, Status: StatusCanceled},
	}}
	var buf bytes.Buffer
	if err := WriteSWF(&buf, orig); err != nil {
		t.Fatal(err)
	}
	first := buf.String()
	got, err := ParseSWF(strings.NewReader(first), "rt", 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range got.Jobs {
		if j.Status != orig.Jobs[i].Status {
			t.Errorf("job %d status = %d, want %d", j.ID, j.Status, orig.Jobs[i].Status)
		}
	}
	var buf2 bytes.Buffer
	if err := WriteSWF(&buf2, got); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != first {
		t.Errorf("second write differs from first:\n%s\nvs\n%s", buf2.String(), first)
	}
	filtered, err := ParseSWFFiltered(strings.NewReader(first), "rt", 0, SWFFilter{DropFailed: true})
	if err != nil {
		t.Fatal(err)
	}
	if ids := jobIDs(filtered); !equalInts(ids, []int{1, 3}) {
		t.Errorf("filtered reparse kept %v, want [1 3]", ids)
	}
}

// A hand-built job that never sets Status must survive a write/parse
// cycle with DropFailed enabled: the zero value is "unknown", not
// "failed", so filters cannot silently empty programmatic traces.
func TestSWFZeroValueStatusIsNotFailed(t *testing.T) {
	tr := &Trace{Name: "zv", CPUs: 8, Jobs: []*Job{
		{ID: 1, Submit: 0, Runtime: 10, Procs: 1, ReqTime: 10, Beta: -1, User: -1},
	}}
	var buf bytes.Buffer
	if err := WriteSWF(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ParseSWFFiltered(strings.NewReader(buf.String()), "zv", 0, SWFFilter{DropFailed: true, DropCanceled: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Jobs) != 1 {
		t.Fatalf("kept %d jobs, want 1 (zero-value status must not be dropped)", len(got.Jobs))
	}
	if got.Jobs[0].Status != StatusUnknown {
		t.Errorf("status = %d, want StatusUnknown", got.Jobs[0].Status)
	}
	if _, removed := RemoveFailed(got); removed != 0 {
		t.Errorf("RemoveFailed removed %d unknown-status jobs, want 0", removed)
	}
}
