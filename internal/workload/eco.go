package workload

import (
	"fmt"
	"strconv"
	"strings"
)

// EcoSet is the parsed form of SWFFilter.EcoUsers: which submitting
// users have opted their jobs into eco-mode power management. The zero
// value is the empty set (hook off). It applies uniformly to every
// workload pipeline — the SWF parsers tag during decoding, wgen preset
// resolution tags generated traces (Tag) and streamed cursors (TagEco) —
// so "the same filter produces the same Eco flags" holds regardless of
// how a workload is loaded.
type EcoSet struct {
	all bool
	ids map[int]bool
}

// EcoSet parses the filter's EcoUsers hook: comma-separated user IDs, or
// "*" to opt in every job regardless of its user (the only form that can
// match jobs carrying no user ID). Empty EcoUsers yields the empty set.
func (f SWFFilter) EcoSet() (EcoSet, error) {
	if f.EcoUsers == "" {
		return EcoSet{}, nil
	}
	if strings.TrimSpace(f.EcoUsers) == "*" {
		return EcoSet{all: true}, nil
	}
	ids := make(map[int]bool)
	for _, part := range strings.Split(f.EcoUsers, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, err := strconv.Atoi(part)
		if err != nil {
			return EcoSet{}, fmt.Errorf("workload: SWFFilter.EcoUsers entry %q is not a user ID or \"*\": %v", part, err)
		}
		ids[id] = true
	}
	return EcoSet{ids: ids}, nil
}

// Empty reports whether the hook is off (no job can match).
func (e EcoSet) Empty() bool { return !e.all && len(e.ids) == 0 }

// Opted reports whether a job submitted by the given user (-1 when the
// workload records none) opts into eco mode.
func (e EcoSet) Opted(user int) bool {
	if e.all {
		return true
	}
	return user >= 0 && e.ids[user]
}

// Tag applies the set to materialized jobs in place. A no-op for the
// empty set, so untagged pipelines stay untouched.
func (e EcoSet) Tag(jobs []*Job) {
	if e.Empty() {
		return
	}
	for _, j := range jobs {
		j.Eco = e.Opted(j.User)
	}
}

// TagEco wraps a source so every streamed job carries the set's Eco
// flag. The empty set returns src unwrapped, keeping the untagged
// streaming path byte- and type-identical.
func TagEco(src JobSource, e EcoSet) JobSource {
	if e.Empty() {
		return src
	}
	return &ecoSource{src: src, set: e}
}

type ecoSource struct {
	src JobSource
	set EcoSet
}

func (s *ecoSource) Name() string { return s.src.Name() }
func (s *ecoSource) CPUs() int    { return s.src.CPUs() }
func (s *ecoSource) Err() error   { return s.src.Err() }
func (s *ecoSource) Reset() error { return s.src.Reset() }

// Len implements Counted: tagging drops no jobs, so the inner length
// passes through (-1 when the inner source cannot know it).
func (s *ecoSource) Len() int {
	if c, ok := s.src.(Counted); ok {
		return c.Len()
	}
	return -1
}

// Next implements JobSource.
func (s *ecoSource) Next() (Job, bool) {
	j, ok := s.src.Next()
	if ok {
		j.Eco = s.set.Opted(j.User)
	}
	return j, ok
}

var (
	_ JobSource = (*ecoSource)(nil)
	_ Counted   = (*ecoSource)(nil)
)
