package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func validJob() *Job {
	return &Job{ID: 1, Submit: 0, Runtime: 100, Procs: 4, ReqTime: 200, Beta: -1}
}

func TestJobValidate(t *testing.T) {
	if err := validJob().Validate(); err != nil {
		t.Errorf("valid job rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Job)
	}{
		{"zero procs", func(j *Job) { j.Procs = 0 }},
		{"negative submit", func(j *Job) { j.Submit = -1 }},
		{"negative runtime", func(j *Job) { j.Runtime = -5 }},
		{"zero reqtime", func(j *Job) { j.ReqTime = 0 }},
	}
	for _, c := range cases {
		j := validJob()
		c.mutate(j)
		if err := j.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestEffectiveRuntimeCapsAtRequest(t *testing.T) {
	j := validJob()
	j.Runtime, j.ReqTime = 500, 300
	if got := j.EffectiveRuntime(); got != 300 {
		t.Errorf("EffectiveRuntime = %v, want 300 (killed at limit)", got)
	}
	j.Runtime = 100
	if got := j.EffectiveRuntime(); got != 100 {
		t.Errorf("EffectiveRuntime = %v, want 100", got)
	}
}

func TestTraceValidate(t *testing.T) {
	tr := &Trace{Name: "t", CPUs: 8, Jobs: []*Job{validJob()}}
	if err := tr.Validate(); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
	if err := (&Trace{Name: "t", CPUs: 0, Jobs: []*Job{validJob()}}).Validate(); err == nil {
		t.Error("zero-CPU trace accepted")
	}
	if err := (&Trace{Name: "t", CPUs: 8}).Validate(); err == nil {
		t.Error("empty trace accepted")
	}
	big := validJob()
	big.Procs = 16
	if err := (&Trace{Name: "t", CPUs: 8, Jobs: []*Job{big}}).Validate(); err == nil {
		t.Error("oversized job accepted")
	}
}

func TestSortBySubmit(t *testing.T) {
	tr := &Trace{Name: "t", CPUs: 8, Jobs: []*Job{
		{ID: 3, Submit: 50, Runtime: 1, Procs: 1, ReqTime: 1},
		{ID: 1, Submit: 10, Runtime: 1, Procs: 1, ReqTime: 1},
		{ID: 2, Submit: 10, Runtime: 1, Procs: 1, ReqTime: 1},
	}}
	tr.SortBySubmit()
	if tr.Jobs[0].ID != 1 || tr.Jobs[1].ID != 2 || tr.Jobs[2].ID != 3 {
		t.Errorf("sorted order = %d,%d,%d, want 1,2,3", tr.Jobs[0].ID, tr.Jobs[1].ID, tr.Jobs[2].ID)
	}
}

func TestComputeStats(t *testing.T) {
	tr := &Trace{Name: "t", CPUs: 10, Jobs: []*Job{
		{ID: 1, Submit: 0, Runtime: 3600, Procs: 1, ReqTime: 3600},
		{ID: 2, Submit: 3600, Runtime: 1800, Procs: 4, ReqTime: 3600},
	}}
	s := tr.ComputeStats()
	if s.Jobs != 2 {
		t.Errorf("Jobs = %d", s.Jobs)
	}
	wantCPUHours := (3600*1 + 1800*4) / 3600.0
	if math.Abs(s.TotalCPUHours-wantCPUHours) > 1e-9 {
		t.Errorf("TotalCPUHours = %v, want %v", s.TotalCPUHours, wantCPUHours)
	}
	if s.Span != 3600 {
		t.Errorf("Span = %v, want 3600", s.Span)
	}
	wantUtil := (3600.0 + 7200.0) / (10 * 3600)
	if math.Abs(s.Utilization-wantUtil) > 1e-9 {
		t.Errorf("Utilization = %v, want %v", s.Utilization, wantUtil)
	}
	if s.SerialShare != 0.5 {
		t.Errorf("SerialShare = %v, want 0.5", s.SerialShare)
	}
	if s.MeanProcs != 2.5 {
		t.Errorf("MeanProcs = %v, want 2.5", s.MeanProcs)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	s := (&Trace{Name: "e", CPUs: 4}).ComputeStats()
	if s.Jobs != 0 || s.Utilization != 0 {
		t.Error("empty trace stats should be zero")
	}
}

func TestSlice(t *testing.T) {
	tr := &Trace{Name: "t", CPUs: 4, Jobs: make([]*Job, 10)}
	for i := range tr.Jobs {
		tr.Jobs[i] = &Job{ID: i, Runtime: 1, Procs: 1, ReqTime: 1}
	}
	if got := tr.Slice(2, 5); len(got.Jobs) != 3 || got.Jobs[0].ID != 2 {
		t.Errorf("Slice(2,5) wrong: len=%d", len(got.Jobs))
	}
	if got := tr.Slice(-5, 100); len(got.Jobs) != 10 {
		t.Errorf("clamped slice wrong: len=%d", len(got.Jobs))
	}
	if got := tr.Slice(7, 3); len(got.Jobs) != 0 {
		t.Errorf("inverted slice should be empty, len=%d", len(got.Jobs))
	}
}

// Property: EffectiveRuntime is always <= both Runtime and ReqTime bounds
// that apply, and non-negative for valid jobs.
func TestQuickEffectiveRuntime(t *testing.T) {
	f := func(rt, rq uint32) bool {
		j := &Job{ID: 1, Runtime: float64(rt), Procs: 1, ReqTime: float64(rq) + 1}
		e := j.EffectiveRuntime()
		return e >= 0 && e <= j.Runtime && e <= j.ReqTime
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
