package config

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/sched"
)

const fullConfig = `{
  "platform": {
    "gears": [
      {"freq_ghz": 1.0, "voltage_v": 1.0},
      {"freq_ghz": 2.0, "voltage_v": 1.3}
    ],
    "activity_ratio": 3.0,
    "static_fraction": 0.2,
    "beta": 0.4
  },
  "policy": {
    "bsld_threshold": 2.5,
    "wq_threshold": "NO",
    "strict_backfill_bsld": true
  },
  "machine": {
    "size_factor": 1.2,
    "scheduler": "easy",
    "selection": "contiguous"
  },
  "workload": {
    "preset": "SDSCBlue",
    "jobs": 300,
    "seed": 99
  }
}`

func TestParseFullConfig(t *testing.T) {
	f, err := Parse(strings.NewReader(fullConfig))
	if err != nil {
		t.Fatal(err)
	}
	if f.Platform.Beta != 0.4 {
		t.Errorf("beta = %v", f.Platform.Beta)
	}
	if int(f.Policy.WQThreshold) != core.NoWQLimit {
		t.Errorf("wq = %d, want NoWQLimit", f.Policy.WQThreshold)
	}
}

func TestBuildSpecFull(t *testing.T) {
	f, err := Parse(strings.NewReader(fullConfig))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := f.BuildSpec()
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Gears) != 2 || spec.Gears[1].Freq != 2.0 {
		t.Errorf("gears = %v", spec.Gears)
	}
	if spec.Beta != 0.4 {
		t.Errorf("beta = %v", spec.Beta)
	}
	if spec.SizeFactor != 1.2 {
		t.Errorf("size factor = %v", spec.SizeFactor)
	}
	if spec.Selection != cluster.ContiguousBestFit {
		t.Errorf("selection = %v", spec.Selection)
	}
	if spec.Policy == nil || !strings.Contains(spec.Policy.Name(), "2.5") {
		t.Errorf("policy = %v", spec.Policy)
	}
	if len(spec.Trace.Jobs) != 300 || spec.Trace.Name != "SDSCBlue" {
		t.Errorf("trace = %s/%d jobs", spec.Trace.Name, len(spec.Trace.Jobs))
	}
	// The spec must actually run.
	out, err := runner.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if out.Results.Jobs != 300 {
		t.Errorf("simulated %d jobs", out.Results.Jobs)
	}
}

func TestBuildSpecDefaults(t *testing.T) {
	f, err := Parse(strings.NewReader(`{"workload": {"preset": "CTC", "jobs": 50}}`))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := f.BuildSpec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Policy != nil {
		t.Error("policy section omitted but spec has a policy (baseline expected)")
	}
	if spec.Variant != sched.EASY {
		t.Errorf("variant = %v, want EASY", spec.Variant)
	}
	if len(spec.Gears) != 6 {
		t.Errorf("gears = %d, want paper's 6", len(spec.Gears))
	}
	if spec.Beta != runner.DefaultBeta {
		t.Errorf("beta = %v", spec.Beta)
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	if _, err := Parse(strings.NewReader(`{"platfrom": {}}`)); err == nil {
		t.Error("typo field accepted")
	}
}

func TestWQUnmarshal(t *testing.T) {
	cases := []struct {
		in   string
		want int
		err  bool
	}{
		{`4`, 4, false},
		{`0`, 0, false},
		{`-1`, core.NoWQLimit, false},
		{`"NO"`, core.NoWQLimit, false},
		{`"no"`, core.NoWQLimit, false},
		{`"nolimit"`, core.NoWQLimit, false},
		{`"forty"`, 0, true},
		{`4.5`, 0, true},
	}
	for _, c := range cases {
		var w WQ
		err := w.UnmarshalJSON([]byte(c.in))
		if c.err {
			if err == nil {
				t.Errorf("%s: expected error", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: %v", c.in, err)
			continue
		}
		if int(w) != c.want {
			t.Errorf("%s -> %d, want %d", c.in, int(w), c.want)
		}
	}
}

func TestWQMarshalRoundTrip(t *testing.T) {
	for _, v := range []WQ{0, 4, 16, WQ(core.NoWQLimit)} {
		data, err := v.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		var back WQ
		if err := back.UnmarshalJSON(data); err != nil {
			t.Fatal(err)
		}
		if back != v {
			t.Errorf("round trip %d -> %s -> %d", int(v), data, int(back))
		}
	}
}

func TestBuildSpecErrors(t *testing.T) {
	cases := []string{
		`{"workload": {}}`,                   // no trace source
		`{"workload": {"preset": "nosuch"}}`, // unknown preset
		`{"machine": {"scheduler": "lifo"}, "workload": {"preset":"CTC","jobs":10}}`,
		`{"machine": {"selection": "zigzag"}, "workload": {"preset":"CTC","jobs":10}}`,
		`{"platform": {"gears": [{"freq_ghz": 0, "voltage_v": 1}]}, "workload": {"preset":"CTC","jobs":10}}`,
		`{"policy": {"bsld_threshold": 0.1}, "workload": {"preset":"CTC","jobs":10}}`,
	}
	for _, in := range cases {
		f, err := Parse(strings.NewReader(in))
		if err != nil {
			continue // parse-level rejection is fine too
		}
		if _, err := f.BuildSpec(); err == nil {
			t.Errorf("config accepted: %s", in)
		}
	}
}

func TestLoadFromDisk(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sim.json")
	if err := os.WriteFile(path, []byte(fullConfig), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Workload.Preset != "SDSCBlue" {
		t.Errorf("preset = %q", f.Workload.Preset)
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestBuildSpecSWFWorkload(t *testing.T) {
	dir := t.TempDir()
	swf := filepath.Join(dir, "t.swf")
	content := "; MaxProcs: 8\n1 0 -1 100 2 -1 -1 2 200 -1 1 -1 -1 -1 -1 -1 -1 -1\n"
	if err := os.WriteFile(swf, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Parse(strings.NewReader(`{"workload": {"swf": "` + swf + `"}}`))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := f.BuildSpec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Trace.CPUs != 8 || len(spec.Trace.Jobs) != 1 {
		t.Errorf("swf trace = %d cpus, %d jobs", spec.Trace.CPUs, len(spec.Trace.Jobs))
	}
}

func TestBuildSpecOrderAndReservations(t *testing.T) {
	f, err := Parse(strings.NewReader(`{
	  "machine": {"order": "sjf", "reservations": 4},
	  "workload": {"preset": "CTC", "jobs": 30}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := f.BuildSpec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Order != sched.SJFOrder {
		t.Errorf("order = %v, want SJF", spec.Order)
	}
	if spec.Reservations != 4 {
		t.Errorf("reservations = %d, want 4", spec.Reservations)
	}
	bad := []string{
		`{"machine": {"order": "lifo"}, "workload": {"preset":"CTC","jobs":10}}`,
		`{"machine": {"reservations": -2}, "workload": {"preset":"CTC","jobs":10}}`,
	}
	for _, in := range bad {
		f, err := Parse(strings.NewReader(in))
		if err != nil {
			continue
		}
		if _, err := f.BuildSpec(); err == nil {
			t.Errorf("config accepted: %s", in)
		}
	}
}
