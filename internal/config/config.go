// Package config loads simulation setups from JSON files. The paper notes
// that all power/time model parameters "are platform dependent and
// adjustable in configuration files" (§4); this package is that facility:
// gear sets, power-model constants, β, the policy thresholds, the machine
// and the workload can all be declared in one document and turned into a
// ready runner.Spec.
package config

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dvfs"
	"repro/internal/runner"
	"repro/internal/sched"
	"repro/internal/wgen"
	"repro/internal/workload"
)

// File is the root configuration document. Omitted sections fall back to
// the paper's defaults.
type File struct {
	Platform *Platform `json:"platform,omitempty"`
	Policy   *Policy   `json:"policy,omitempty"`
	Machine  *Machine  `json:"machine,omitempty"`
	Workload *Workload `json:"workload,omitempty"`
}

// Platform carries the power and time model constants of paper §4.
type Platform struct {
	// Gears lists frequency/voltage pairs, lowest frequency first
	// (Table 2 when omitted).
	Gears []Gear `json:"gears,omitempty"`
	// ACRunning, ActivityRatio and StaticFraction parameterize the power
	// model (1.0, 2.5 and 0.25 in the paper).
	ACRunning      float64 `json:"ac_running,omitempty"`
	ActivityRatio  float64 `json:"activity_ratio,omitempty"`
	StaticFraction float64 `json:"static_fraction,omitempty"`
	// Beta is the execution-time dilation sensitivity (0.5 in the paper).
	Beta float64 `json:"beta,omitempty"`
}

// Gear mirrors dvfs.Gear for JSON.
type Gear struct {
	FreqGHz  float64 `json:"freq_ghz"`
	VoltageV float64 `json:"voltage_v"`
}

// Policy configures the frequency assignment algorithm. A nil section
// runs the no-DVFS baseline.
type Policy struct {
	BSLDThreshold float64 `json:"bsld_threshold"`
	// WQThreshold accepts a number or the string "NO" for no limit.
	WQThreshold        WQ      `json:"wq_threshold"`
	ShortJobThreshold  float64 `json:"short_job_threshold,omitempty"`
	StrictBackfillBSLD bool    `json:"strict_backfill_bsld,omitempty"`
	Boost              bool    `json:"boost,omitempty"`
	BoostWQ            int     `json:"boost_wq,omitempty"`
}

// WQ is a wait-queue threshold that unmarshals from a JSON number or the
// string "NO" (case-insensitive), matching the paper's table captions.
type WQ int

// UnmarshalJSON implements json.Unmarshaler.
func (w *WQ) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		if strings.EqualFold(s, "NO") || strings.EqualFold(s, "nolimit") {
			*w = WQ(core.NoWQLimit)
			return nil
		}
		return fmt.Errorf("config: invalid wq_threshold %q (number or \"NO\")", s)
	}
	var n int
	if err := json.Unmarshal(data, &n); err != nil {
		return fmt.Errorf("config: invalid wq_threshold %s", data)
	}
	if n < 0 {
		*w = WQ(core.NoWQLimit)
	} else {
		*w = WQ(n)
	}
	return nil
}

// MarshalJSON implements json.Marshaler.
func (w WQ) MarshalJSON() ([]byte, error) {
	if int(w) == core.NoWQLimit {
		return []byte(`"NO"`), nil
	}
	return json.Marshal(int(w))
}

// Machine configures the simulated cluster.
type Machine struct {
	// CPUs overrides the machine size (0 keeps the workload's size).
	CPUs int `json:"cpus,omitempty"`
	// SizeFactor scales the workload's original size (Figures 7–9).
	SizeFactor float64 `json:"size_factor,omitempty"`
	// Scheduler is easy (default), fcfs or conservative.
	Scheduler string `json:"scheduler,omitempty"`
	// Selection is firstfit (default), contiguous or nextfit.
	Selection string `json:"selection,omitempty"`
	// Order is fcfs (default) or sjf.
	Order string `json:"order,omitempty"`
	// Reservations is the EASY reservation depth (0/1 classic; larger
	// values protect the first K queued jobs).
	Reservations int `json:"reservations,omitempty"`
}

// Workload selects the trace: a built-in preset or an SWF file.
type Workload struct {
	Preset string `json:"preset,omitempty"`
	SWF    string `json:"swf,omitempty"`
	// CPUs supplies the system size for headerless SWF files.
	CPUs int `json:"cpus,omitempty"`
	// Jobs truncates/extends preset generation (default 5000).
	Jobs int `json:"jobs,omitempty"`
	// Seed overrides the preset's RNG seed when non-zero.
	Seed int64 `json:"seed,omitempty"`
	// CleanFlurries applies the archive-style per-user burst removal.
	CleanFlurries bool `json:"clean_flurries,omitempty"`
}

// Load reads a configuration file from disk.
func Load(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Parse(f)
}

// Parse decodes a configuration document, rejecting unknown fields so
// typos surface instead of silently running defaults.
func Parse(r io.Reader) (*File, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var f File
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	return &f, nil
}

// BuildSpec assembles the runner.Spec (and the trace inside it) the
// document describes.
func (f *File) BuildSpec() (runner.Spec, error) {
	spec := runner.Spec{}

	// Platform.
	gears := dvfs.PaperGearSet()
	pm := dvfs.PaperPowerModel()
	beta := runner.DefaultBeta
	if p := f.Platform; p != nil {
		if len(p.Gears) > 0 {
			gears = nil
			for _, g := range p.Gears {
				gears = append(gears, dvfs.Gear{Freq: g.FreqGHz, Voltage: g.VoltageV})
			}
		}
		ac := p.ACRunning
		if ac == 0 {
			ac = 1.0
		}
		ar := p.ActivityRatio
		if ar == 0 {
			ar = 2.5
		}
		sf := p.StaticFraction
		if sf == 0 {
			sf = 0.25
		}
		var err error
		pm, err = dvfs.NewPowerModel(gears, ac, ar, sf)
		if err != nil {
			return spec, err
		}
		if p.Beta != 0 {
			beta = p.Beta
		}
	}
	spec.Gears = gears
	spec.PowerModel = pm
	spec.Beta = beta

	// Workload.
	wl := f.Workload
	if wl == nil {
		wl = &Workload{Preset: "CTC"}
	}
	var tr *workload.Trace
	switch {
	case wl.SWF != "":
		file, err := os.Open(wl.SWF)
		if err != nil {
			return spec, err
		}
		defer file.Close()
		tr, err = workload.ParseSWF(file, wl.SWF, wl.CPUs)
		if err != nil {
			return spec, err
		}
	case wl.Preset != "":
		model, err := wgen.Preset(wl.Preset)
		if err != nil {
			return spec, err
		}
		if wl.Jobs > 0 {
			model.Jobs = wl.Jobs
		}
		if wl.Seed != 0 {
			model.Seed = wl.Seed
		}
		tr, err = wgen.Generate(model)
		if err != nil {
			return spec, err
		}
	default:
		return spec, fmt.Errorf("config: workload needs a preset or an swf path")
	}
	if wl.CleanFlurries {
		tr, _ = workload.RemoveFlurries(tr, workload.DefaultCleanConfig())
	}
	spec.Trace = tr

	// Machine.
	if m := f.Machine; m != nil {
		spec.CPUs = m.CPUs
		spec.SizeFactor = m.SizeFactor
		switch strings.ToLower(m.Scheduler) {
		case "", "easy":
			spec.Variant = sched.EASY
		case "fcfs":
			spec.Variant = sched.FCFS
		case "conservative", "cons":
			spec.Variant = sched.Conservative
		default:
			return spec, fmt.Errorf("config: unknown scheduler %q", m.Scheduler)
		}
		sel, err := cluster.ParseSelection(strings.ToLower(m.Selection))
		if err != nil {
			return spec, err
		}
		spec.Selection = sel
		switch strings.ToLower(m.Order) {
		case "", "fcfs":
			spec.Order = sched.FCFSOrder
		case "sjf":
			spec.Order = sched.SJFOrder
		default:
			return spec, fmt.Errorf("config: unknown queue order %q", m.Order)
		}
		if m.Reservations < 0 {
			return spec, fmt.Errorf("config: negative reservations %d", m.Reservations)
		}
		spec.Reservations = m.Reservations
	}

	// Policy.
	if p := f.Policy; p != nil {
		pol, err := core.NewPolicy(core.Params{
			BSLDThreshold:      p.BSLDThreshold,
			WQThreshold:        int(p.WQThreshold),
			ShortJobThreshold:  p.ShortJobThreshold,
			StrictBackfillBSLD: p.StrictBackfillBSLD,
			Boost:              p.Boost,
			BoostWQ:            p.BoostWQ,
		}, gears, dvfs.NewTimeModel(beta, gears))
		if err != nil {
			return spec, err
		}
		spec.Policy = pol
	}
	return spec, nil
}
