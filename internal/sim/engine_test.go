package sim

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsDispatchInTimeOrder(t *testing.T) {
	e := NewEngine()
	times := []Time{5, 1, 3, 2, 4}
	for _, tm := range times {
		if _, err := e.Schedule(tm, EvArrival, tm); err != nil {
			t.Fatal(err)
		}
	}
	var got []Time
	e.Run(func(ev Event) { got = append(got, ev.T) })
	if !sort.Float64sAreSorted(got) {
		t.Errorf("events out of order: %v", got)
	}
	if len(got) != len(times) {
		t.Errorf("dispatched %d events, want %d", len(got), len(times))
	}
}

func TestEndBeforeArrivalAtSameTime(t *testing.T) {
	e := NewEngine()
	var order []EventKind
	// Insert the arrival first so insertion order alone would dispatch
	// it first; kind ordering must win.
	e.Schedule(10, EvArrival, nil)
	e.Schedule(10, EvEnd, nil)
	e.Run(func(ev Event) { order = append(order, ev.Kind) })
	if order[0] != EvEnd || order[1] != EvArrival {
		t.Errorf("order = %v, want End before Arrival", order)
	}
}

func TestFIFOAtEqualTimeAndKind(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		e.Schedule(7, EvArrival, i)
	}
	e.Run(func(ev Event) { got = append(got, ev.Payload.(int)) })
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time same-kind events not FIFO: %v", got)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	e := NewEngine()
	e.Schedule(3, EvArrival, nil)
	e.Schedule(9, EvArrival, nil)
	var at []Time
	e.Run(func(ev Event) { at = append(at, e.Now()) })
	if at[0] != 3 || at[1] != 9 {
		t.Errorf("Now() during dispatch = %v", at)
	}
	if e.Now() != 9 {
		t.Errorf("final Now() = %v, want 9", e.Now())
	}
}

func TestScheduleFromHandler(t *testing.T) {
	e := NewEngine()
	e.Schedule(1, EvArrival, nil)
	count := 0
	e.Run(func(ev Event) {
		count++
		if count < 5 {
			if _, err := e.Schedule(e.Now()+1, EvArrival, nil); err != nil {
				t.Fatal(err)
			}
		}
	})
	if count != 5 {
		t.Errorf("chained dispatch count = %d, want 5", count)
	}
}

func TestSchedulePastRejected(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, EvArrival, nil)
	e.Run(func(ev Event) {
		if _, err := e.Schedule(5, EvArrival, nil); err != ErrPastEvent {
			t.Errorf("past scheduling error = %v, want ErrPastEvent", err)
		}
	})
}

func TestScheduleNonFiniteRejected(t *testing.T) {
	e := NewEngine()
	if _, err := e.Schedule(math.NaN(), EvArrival, nil); err == nil {
		t.Error("NaN time accepted")
	}
	if _, err := e.Schedule(math.Inf(1), EvArrival, nil); err == nil {
		t.Error("Inf time accepted")
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	h, _ := e.Schedule(5, EvEnd, "canceled")
	e.Schedule(6, EvArrival, "kept")
	e.Cancel(h)
	e.Cancel(h) // double cancel is a no-op
	e.Cancel(Handle{})
	var got []any
	e.Run(func(ev Event) { got = append(got, ev.Payload) })
	if len(got) != 1 || got[0] != "kept" {
		t.Errorf("dispatched = %v, want only the kept event", got)
	}
}

func TestLenSkipsCanceled(t *testing.T) {
	e := NewEngine()
	h, _ := e.Schedule(1, EvArrival, nil)
	e.Schedule(2, EvArrival, nil)
	if e.Len() != 2 {
		t.Errorf("Len = %d, want 2", e.Len())
	}
	e.Cancel(h)
	if e.Len() != 1 {
		t.Errorf("Len after cancel = %d, want 1", e.Len())
	}
}

// Len is a live counter, not a heap scan; it must stay exact across every
// combination of cancel and pop, including canceling after the event fired.
func TestLenAcrossCancelThenPop(t *testing.T) {
	e := NewEngine()
	h1, _ := e.Schedule(1, EvArrival, nil)
	h2, _ := e.Schedule(2, EvArrival, nil)
	e.Schedule(3, EvArrival, nil)
	e.Cancel(h1)
	if e.Len() != 2 {
		t.Fatalf("Len after cancel = %d, want 2", e.Len())
	}
	// Pop everything: the canceled event is skipped, the two live ones
	// fire, and Len must track each pop down to zero.
	var lens []int
	e.Run(func(Event) { lens = append(lens, e.Len()) })
	if len(lens) != 2 || lens[0] != 1 || lens[1] != 0 {
		t.Errorf("Len during drain = %v, want [1 0]", lens)
	}
	if e.Len() != 0 {
		t.Errorf("Len after drain = %d, want 0", e.Len())
	}
	// Canceling handles after their events fired (or were already
	// canceled) must not drive the counter negative.
	e.Cancel(h1)
	e.Cancel(h2)
	if e.Len() != 0 {
		t.Errorf("Len after late cancels = %d, want 0", e.Len())
	}
	if _, err := e.Schedule(10, EvArrival, nil); err != nil {
		t.Fatal(err)
	}
	if e.Len() != 1 {
		t.Errorf("Len after reschedule = %d, want 1", e.Len())
	}
}

// Property: Len always equals the number of live (scheduled, not canceled,
// not yet fired) events, under random schedule/cancel interleavings.
func TestQuickLenMatchesLive(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		e := NewEngine()
		live := 0
		var handles []Handle
		for i := 0; i < int(n%80); i++ {
			h, _ := e.Schedule(Time(r.Intn(50)), EvArrival, nil)
			handles = append(handles, h)
			live++
			if r.Intn(4) == 0 {
				victim := handles[r.Intn(len(handles))]
				if !victim.ev.canceled {
					live--
				}
				e.Cancel(victim)
				e.Cancel(victim) // double cancel must not double count
			}
			if e.Len() != live {
				return false
			}
		}
		e.Run(func(Event) { live-- })
		return e.Len() == 0 && live == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 10; i++ {
		e.Schedule(Time(i), EvArrival, nil)
	}
	count := 0
	e.Run(func(ev Event) {
		count++
		if count == 3 {
			e.Stop()
		}
	})
	if count != 3 {
		t.Errorf("dispatched %d events after Stop, want 3", count)
	}
	if e.Len() != 7 {
		t.Errorf("remaining = %d, want 7", e.Len())
	}
}

// Property: any set of scheduled events is dispatched in non-decreasing
// time order with Ends before Arrivals at equal times.
func TestQuickDispatchOrdering(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		e := NewEngine()
		total := int(n%50) + 1
		for i := 0; i < total; i++ {
			kind := EvArrival
			if r.Intn(2) == 0 {
				kind = EvEnd
			}
			e.Schedule(Time(r.Intn(20)), kind, nil)
		}
		var last Event
		first := true
		ok := true
		e.Run(func(ev Event) {
			if !first {
				if ev.T < last.T {
					ok = false
				}
				if ev.T == last.T && ev.Kind < last.Kind {
					ok = false
				}
			}
			last, first = ev, false
		})
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the engine drains exactly the number of non-canceled events.
func TestQuickDrainCount(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		e := NewEngine()
		total := int(n % 60)
		canceled := 0
		for i := 0; i < total; i++ {
			h, _ := e.Schedule(Time(r.Intn(100)), EvArrival, nil)
			if r.Intn(3) == 0 {
				e.Cancel(h)
				canceled++
			}
		}
		got := 0
		e.Run(func(Event) { got++ })
		return got == total-canceled
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// EvCustom is the extension hook for policies needing extra wake-ups; it
// must interleave with the built-in kinds after Ends and Arrivals at equal
// timestamps.
func TestCustomEventsOrderAfterBuiltins(t *testing.T) {
	e := NewEngine()
	e.Schedule(5, EvCustom, "custom")
	e.Schedule(5, EvArrival, "arrival")
	e.Schedule(5, EvEnd, "end")
	var order []any
	e.Run(func(ev Event) { order = append(order, ev.Payload) })
	want := []any{"end", "arrival", "custom"}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestStopBeforeRunReturnsImmediately(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.Schedule(Time(i), EvArrival, nil)
	}
	e.Stop()
	count := 0
	e.Run(func(Event) { count++ })
	if count != 0 {
		t.Errorf("dispatched %d events after pre-Run Stop, want 0", count)
	}
	if !e.Stopped() {
		t.Error("Stopped() = false after Stop")
	}
	if e.Len() != 5 {
		t.Errorf("Len = %d, want 5 (events must survive a stopped Run)", e.Len())
	}
	// The engine stays stopped: a second Run is also a no-op.
	e.Run(func(Event) { count++ })
	if count != 0 {
		t.Errorf("dispatched %d events on re-Run after Stop, want 0", count)
	}
}

// A handle held past its event's dispatch must stay inert even when the
// engine reuses the event's memory for a later Schedule.
func TestStaleHandleCannotCancelReusedEvent(t *testing.T) {
	e := NewEngine()
	h1, _ := e.Schedule(1, EvEnd, "first")
	e.Run(func(Event) {})
	// h1's event is now in the pool; the next Schedule reuses it.
	h2, _ := e.Schedule(2, EvEnd, "second")
	if h2.ev != h1.ev {
		t.Skip("allocator did not reuse the event; nothing to check")
	}
	e.Cancel(h1) // stale: must not cancel the second event
	got := 0
	e.Run(func(ev Event) {
		got++
		if ev.Payload != "second" {
			t.Errorf("payload = %v, want second", ev.Payload)
		}
	})
	if got != 1 {
		t.Errorf("dispatched %d events, want 1 (stale cancel must be a no-op)", got)
	}
	if e.Len() != 0 {
		t.Errorf("Len = %d, want 0", e.Len())
	}
}

// Pooled and unpooled engines must dispatch identical sequences.
func TestPoolingDoesNotChangeDispatchOrder(t *testing.T) {
	runSeq := func(noPool bool) []Time {
		e := NewEngine()
		e.NoPool = noPool
		var got []Time
		// Interleave scheduling from inside the handler so the pool is
		// actually exercised (events recycle between schedules).
		e.Schedule(0, EvArrival, nil)
		next := Time(1)
		e.Run(func(ev Event) {
			got = append(got, ev.T)
			if next <= 10 {
				e.Schedule(next, EvEnd, nil)
				e.Schedule(next, EvArrival, nil)
				next += 2
			}
		})
		return got
	}
	pooled, plain := runSeq(false), runSeq(true)
	if len(pooled) != len(plain) {
		t.Fatalf("pooled dispatched %d events, plain %d", len(pooled), len(plain))
	}
	for i := range pooled {
		if pooled[i] != plain[i] {
			t.Fatalf("dispatch %d: pooled t=%v, plain t=%v", i, pooled[i], plain[i])
		}
	}
}
