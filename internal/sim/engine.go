// Package sim provides a deterministic discrete-event simulation engine:
// a time-ordered event queue and a run loop. It is the substrate replacing
// the Alvio event-driven simulator the paper extends.
//
// Determinism: events are totally ordered by (time, kind, sequence number),
// so two runs over the same input produce identical schedules. Completions
// sort before arrivals at equal timestamps so resources freed at time t are
// visible to jobs arriving at t.
package sim

import (
	"errors"
	"math"
)

// Time is simulation time in seconds from the start of the run.
type Time = float64

// EventKind distinguishes the event classes of the job scheduling
// simulation. Smaller kinds are processed first at equal timestamps.
type EventKind uint8

const (
	// EvEnd is a job completion (possibly earlier than its requested
	// time). Processed first so freed processors are available to
	// same-instant arrivals.
	EvEnd EventKind = iota
	// EvArrival is a job submission.
	EvArrival
	// EvCustom is available to policies needing extra wake-ups (e.g. the
	// dynamic frequency boost extension re-evaluating running jobs).
	EvCustom
)

// Event is one scheduled occurrence. Payload carries the subject (a job,
// typically); the engine never inspects it.
type Event struct {
	T       Time
	Kind    EventKind
	Payload any

	seq      uint64 // insertion order, final tie-breaker
	gen      uint32 // reuse generation; invalidates stale Handles
	canceled bool
	fired    bool // dispatched by Run; a late Cancel must not recount it
}

// Handle is the unique identity of a scheduled event, usable to cancel it.
// Handles stay valid across the engine's internal event reuse: a handle to
// a fired or canceled event is permanently inert.
type Handle struct {
	ev  *Event
	gen uint32
}

// eventHeap is a hand-rolled binary min-heap ordered by (T, Kind, seq).
// The direct implementation (instead of container/heap) keeps the
// comparison inlined and free of interface dispatch; it is the hottest
// loop of a simulation. Heap layout never affects dispatch order — the
// (T, Kind, seq) key is unique per event, so pops are totally ordered.
type eventHeap []*Event

// less is the total event order: time, then kind (completions before
// arrivals), then insertion sequence.
func less(a, b *Event) bool {
	if a.T != b.T {
		return a.T < b.T
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	return a.seq < b.seq
}

func (h *eventHeap) push(ev *Event) {
	*h = append(*h, ev)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !less(s[i], s[parent]) {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
}

func (h *eventHeap) pop() *Event {
	s := *h
	n := len(s) - 1
	ev := s[0]
	s[0] = s[n]
	s[n] = nil
	s = s[:n]
	*h = s
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		min := l
		if r := l + 1; r < n && less(s[r], s[l]) {
			min = r
		}
		if !less(s[min], s[i]) {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return ev
}

// Engine is the event loop. The zero value is not usable; construct with
// NewEngine.
type Engine struct {
	queue   eventHeap
	now     Time
	nextSeq uint64
	stopped bool
	// pending counts non-canceled queued events so Len is O(1); it is
	// maintained by Schedule (+1), Cancel (−1) and Run's pops (−1 for
	// live events; canceled ones were already subtracted by Cancel).
	pending int
	// maxPending is the high-water mark of pending, the direct measure of
	// the engine's O(·) memory behavior over a run.
	maxPending int
	// pool recycles dispatched events so steady-state simulation allocates
	// no Event per Schedule. Reused events bump their generation, which
	// inertly expires any Handle still pointing at them.
	pool []*Event
	// NoPool disables event recycling (every Schedule allocates), retained
	// as the seed-era reference behavior for allocation benchmarks.
	NoPool bool
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Len returns the number of pending (non-canceled) events.
func (e *Engine) Len() int { return e.pending }

// MaxPending returns the high-water mark of pending events over the
// engine's lifetime — with streamed arrivals it stays O(running jobs)
// where scheduling a whole trace upfront makes it O(trace).
func (e *Engine) MaxPending() int { return e.maxPending }

// ErrPastEvent is returned when scheduling before the current time.
var ErrPastEvent = errors.New("sim: event scheduled in the past")

// Schedule enqueues an event at time t. Scheduling in the past or with a
// non-finite time is an error.
func (e *Engine) Schedule(t Time, kind EventKind, payload any) (Handle, error) {
	if math.IsNaN(t) || math.IsInf(t, 0) {
		return Handle{}, errors.New("sim: non-finite event time")
	}
	if t < e.now {
		return Handle{}, ErrPastEvent
	}
	var ev *Event
	if n := len(e.pool); n > 0 {
		ev = e.pool[n-1]
		e.pool[n-1] = nil
		e.pool = e.pool[:n-1]
		ev.T, ev.Kind, ev.Payload = t, kind, payload
		ev.canceled, ev.fired = false, false
	} else {
		ev = &Event{T: t, Kind: kind, Payload: payload}
	}
	ev.seq = e.nextSeq
	e.nextSeq++
	e.queue.push(ev)
	e.pending++
	if e.pending > e.maxPending {
		e.maxPending = e.pending
	}
	return Handle{ev: ev, gen: ev.gen}, nil
}

// Cancel marks a scheduled event so it will be skipped. Canceling an
// already-fired or already-canceled event — or holding a handle past the
// event's reuse — is a no-op.
func (e *Engine) Cancel(h Handle) {
	if h.ev != nil && h.gen == h.ev.gen && !h.ev.canceled && !h.ev.fired {
		h.ev.canceled = true
		e.pending--
	}
}

// Stop makes Run return after the current event's handler completes. A
// Stop issued before Run makes it return immediately without dispatching;
// the engine stays stopped either way, so a later Run is also a no-op.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// recycle expires an event's handles and returns it to the pool.
func (e *Engine) recycle(ev *Event) {
	ev.gen++
	ev.Payload = nil
	if !e.NoPool {
		e.pool = append(e.pool, ev)
	}
}

// Run dispatches events in order to handle until the queue drains or Stop
// is called. The handler may schedule further events.
func (e *Engine) Run(handle func(Event)) {
	for len(e.queue) > 0 && !e.stopped {
		ev := e.queue.pop()
		if ev.canceled {
			e.recycle(ev)
			continue
		}
		ev.fired = true
		e.pending--
		e.now = ev.T
		handle(*ev)
		e.recycle(ev)
	}
}
