// Package sim provides a deterministic discrete-event simulation engine:
// a time-ordered event queue and a run loop. It is the substrate replacing
// the Alvio event-driven simulator the paper extends.
//
// Determinism: events are totally ordered by (time, kind, sequence number),
// so two runs over the same input produce identical schedules. Completions
// sort before arrivals at equal timestamps so resources freed at time t are
// visible to jobs arriving at t.
package sim

import (
	"container/heap"
	"errors"
	"math"
)

// Time is simulation time in seconds from the start of the run.
type Time = float64

// EventKind distinguishes the event classes of the job scheduling
// simulation. Smaller kinds are processed first at equal timestamps.
type EventKind uint8

const (
	// EvEnd is a job completion (possibly earlier than its requested
	// time). Processed first so freed processors are available to
	// same-instant arrivals.
	EvEnd EventKind = iota
	// EvArrival is a job submission.
	EvArrival
	// EvCustom is available to policies needing extra wake-ups (e.g. the
	// dynamic frequency boost extension re-evaluating running jobs).
	EvCustom
)

// Event is one scheduled occurrence. Payload carries the subject (a job,
// typically); the engine never inspects it.
type Event struct {
	T       Time
	Kind    EventKind
	Payload any

	seq      uint64 // insertion order, final tie-breaker
	canceled bool
	fired    bool // dispatched by Run; a late Cancel must not recount it
}

// Handle is the unique identity of a scheduled event, usable to cancel it.
type Handle struct{ ev *Event }

// eventHeap implements container/heap ordering by (T, Kind, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.T != b.T {
		return a.T < b.T
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	return a.seq < b.seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is the event loop. The zero value is not usable; construct with
// NewEngine.
type Engine struct {
	queue   eventHeap
	now     Time
	nextSeq uint64
	stopped bool
	// pending counts non-canceled queued events so Len is O(1); it is
	// maintained by Schedule (+1), Cancel (−1) and Run's pops (−1 for
	// live events; canceled ones were already subtracted by Cancel).
	pending int
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Len returns the number of pending (non-canceled) events.
func (e *Engine) Len() int { return e.pending }

// ErrPastEvent is returned when scheduling before the current time.
var ErrPastEvent = errors.New("sim: event scheduled in the past")

// Schedule enqueues an event at time t. Scheduling in the past or with a
// non-finite time is an error.
func (e *Engine) Schedule(t Time, kind EventKind, payload any) (Handle, error) {
	if math.IsNaN(t) || math.IsInf(t, 0) {
		return Handle{}, errors.New("sim: non-finite event time")
	}
	if t < e.now {
		return Handle{}, ErrPastEvent
	}
	ev := &Event{T: t, Kind: kind, Payload: payload, seq: e.nextSeq}
	e.nextSeq++
	heap.Push(&e.queue, ev)
	e.pending++
	return Handle{ev: ev}, nil
}

// Cancel marks a scheduled event so it will be skipped. Canceling an
// already-fired or already-canceled event is a no-op.
func (e *Engine) Cancel(h Handle) {
	if h.ev != nil && !h.ev.canceled && !h.ev.fired {
		h.ev.canceled = true
		e.pending--
	}
}

// Stop makes Run return after the current event's handler completes.
func (e *Engine) Stop() { e.stopped = true }

// Run dispatches events in order to handle until the queue drains or Stop
// is called. The handler may schedule further events.
func (e *Engine) Run(handle func(Event)) {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.canceled {
			continue
		}
		ev.fired = true
		e.pending--
		e.now = ev.T
		handle(*ev)
	}
}
