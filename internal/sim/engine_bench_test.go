package sim

import (
	"math/rand"
	"testing"
)

// BenchmarkScheduleAndDrain measures raw event queue throughput.
func BenchmarkScheduleAndDrain(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	times := make([]Time, 10000)
	for i := range times {
		times[i] = r.Float64() * 1e6
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for _, t := range times {
			if _, err := e.Schedule(t, EvArrival, nil); err != nil {
				b.Fatal(err)
			}
		}
		count := 0
		e.Run(func(Event) { count++ })
		if count != len(times) {
			b.Fatalf("drained %d", count)
		}
	}
	b.ReportMetric(float64(len(times)*b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkInterleaved measures the simulation-like pattern: each handled
// event schedules a follow-up.
func BenchmarkInterleaved(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		e.Schedule(0, EvArrival, 0)
		n := 0
		e.Run(func(ev Event) {
			n++
			if n < 10000 {
				e.Schedule(e.Now()+1, EvEnd, nil)
			}
		})
	}
}
