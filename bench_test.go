package repro

// One benchmark per table and figure of the paper's evaluation, plus
// engine-throughput benches and ablations of the design decisions called
// out in DESIGN.md. Each artifact bench rebuilds its table from the shared
// simulation grid (warmed once outside the timed region) and reports the
// headline quantity through b.ReportMetric; run with -v to see the full
// rows, or use cmd/experiments for the canonical reproduction.

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dvfs"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/sweep"
	"repro/internal/textplot"
	"repro/internal/wgen"
	"repro/internal/workload"
)

var (
	gridOnce  sync.Once
	gridSuite *experiments.Suite
	gridErr   error
)

// grid returns the fully-warmed 5000-job simulation grid, built once per
// test binary invocation.
func grid(b *testing.B) *experiments.Suite {
	b.Helper()
	gridOnce.Do(func() {
		gridSuite = experiments.NewSuite(0)
		gridErr = gridSuite.Prefetch(experiments.GridConfigs(), 0)
	})
	if gridErr != nil {
		b.Fatal(gridErr)
	}
	return gridSuite
}

func logTable(b *testing.B, t textplot.Table) {
	b.Helper()
	b.Logf("\n%s", t.Render())
}

func BenchmarkTable1Workloads(b *testing.B) {
	s := grid(b)
	var t textplot.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = experiments.Table1(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, t)
	base, err := s.Cell(experiments.Config{Workload: "SDSC"})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(base.Results.AvgBSLD, "SDSC-avgBSLD")
}

func BenchmarkTable2GearSet(b *testing.B) {
	var t textplot.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Table2()
	}
	logTable(b, t)
	b.ReportMetric(100*dvfs.PaperPowerModel().IdleFraction(), "idle-power-%")
}

// avgSavings computes the mean computational-energy saving (percent)
// across the five workloads at one parameter combination.
func avgSavings(b *testing.B, s *experiments.Suite, thr float64, wq int) float64 {
	b.Helper()
	sum := 0.0
	for _, w := range experiments.Workloads() {
		base, err := s.Cell(experiments.Config{Workload: w})
		if err != nil {
			b.Fatal(err)
		}
		c, err := s.Cell(experiments.Config{Workload: w, BSLDThr: thr, WQThr: wq})
		if err != nil {
			b.Fatal(err)
		}
		sum += 100 * (1 - c.Results.CompEnergy/base.Results.CompEnergy)
	}
	return sum / float64(len(experiments.Workloads()))
}

func BenchmarkFig3NormalizedEnergy(b *testing.B) {
	s := grid(b)
	var t0, t1 textplot.Table
	var err error
	for i := 0; i < b.N; i++ {
		if t0, err = experiments.Fig3(s, experiments.EnergyIdleZero); err != nil {
			b.Fatal(err)
		}
		if t1, err = experiments.Fig3(s, experiments.EnergyIdleLow); err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, t0)
	logTable(b, t1)
	// The paper's headline: 7–18% average savings depending on thresholds.
	b.ReportMetric(avgSavings(b, s, 1.5, 0), "avg-savings-%(1.5,0)")
	b.ReportMetric(avgSavings(b, s, 3, core.NoWQLimit), "avg-savings-%(3,NO)")
}

func BenchmarkFig4ReducedJobs(b *testing.B) {
	s := grid(b)
	var t textplot.Table
	var err error
	for i := 0; i < b.N; i++ {
		if t, err = experiments.Fig4(s); err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, t)
	// Paper: Thunder reduces MORE jobs at threshold 1.5 than at 2 (WQ=4).
	lo, err := s.Cell(experiments.Config{Workload: "LLNLThunder", BSLDThr: 1.5, WQThr: 4})
	if err != nil {
		b.Fatal(err)
	}
	hi, err := s.Cell(experiments.Config{Workload: "LLNLThunder", BSLDThr: 2, WQThr: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(lo.Results.ReducedJobs), "thunder-reduced(1.5,4)")
	b.ReportMetric(float64(hi.Results.ReducedJobs), "thunder-reduced(2,4)")
}

func BenchmarkFig5AvgBSLD(b *testing.B) {
	s := grid(b)
	var t textplot.Table
	var err error
	for i := 0; i < b.N; i++ {
		if t, err = experiments.Fig5(s); err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, t)
	c, err := s.Cell(experiments.Config{Workload: "CTC", BSLDThr: 3, WQThr: core.NoWQLimit})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(c.Results.AvgBSLD, "CTC-BSLD(3,NO)")
}

func BenchmarkFig6WaitTrace(b *testing.B) {
	s := grid(b)
	var chart string
	var t textplot.Table
	var err error
	for i := 0; i < b.N; i++ {
		if chart, t, err = experiments.Fig6(s); err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("\n%s\n%s", chart, t.Render())
	orig, dvfsRun, err := experiments.Fig6Series(s)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(orig[0].Results.AvgWait, "orig-wait-s")
	b.ReportMetric(dvfsRun[0].Results.AvgWait, "dvfs-wait-s")
}

func BenchmarkFig7EnlargedWQ0(b *testing.B) {
	s := grid(b)
	var t textplot.Table
	var err error
	for i := 0; i < b.N; i++ {
		if t, err = experiments.Fig7(s, experiments.EnergyIdleZero); err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, t)
}

func BenchmarkFig8EnlargedWQNo(b *testing.B) {
	s := grid(b)
	var t textplot.Table
	var err error
	for i := 0; i < b.N; i++ {
		if t, err = experiments.Fig8(s, experiments.EnergyIdleZero); err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, t)
	// Paper: 20% enlargement cuts computational energy by ~25–30%.
	sum := 0.0
	for _, w := range experiments.Workloads() {
		base, err := s.Cell(experiments.Config{Workload: w})
		if err != nil {
			b.Fatal(err)
		}
		c, err := s.Cell(experiments.Config{Workload: w, BSLDThr: 2, WQThr: core.NoWQLimit, SizeFactor: 1.2})
		if err != nil {
			b.Fatal(err)
		}
		sum += 100 * (1 - c.Results.CompEnergy/base.Results.CompEnergy)
	}
	b.ReportMetric(sum/5, "avg-savings-%-at+20%")
}

func BenchmarkFig9EnlargedBSLD(b *testing.B) {
	s := grid(b)
	var t textplot.Table
	var err error
	for i := 0; i < b.N; i++ {
		if t, err = experiments.Fig9(s); err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, t)
	// Paper: SDSCBlue beats its no-DVFS baseline with only 10% more CPUs.
	base, err := s.Cell(experiments.Config{Workload: "SDSCBlue"})
	if err != nil {
		b.Fatal(err)
	}
	c, err := s.Cell(experiments.Config{Workload: "SDSCBlue", BSLDThr: 2, WQThr: 0, SizeFactor: 1.1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(base.Results.AvgBSLD, "blue-base-BSLD")
	b.ReportMetric(c.Results.AvgBSLD, "blue-BSLD+10%")
}

func BenchmarkTable3WaitTimes(b *testing.B) {
	s := grid(b)
	var t textplot.Table
	var err error
	for i := 0; i < b.N; i++ {
		if t, err = experiments.Table3(s); err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, t)
}

// --- engine throughput ---------------------------------------------------

// benchTrace caches shortened traces for the throughput benches.
var (
	traceMu    sync.Mutex
	traceCache = map[string]*workload.Trace{}
)

func benchTrace(b *testing.B, name string, jobs int) *workload.Trace {
	b.Helper()
	key := fmt.Sprintf("%s/%d", name, jobs)
	traceMu.Lock()
	defer traceMu.Unlock()
	if tr, ok := traceCache[key]; ok {
		return tr
	}
	m, err := wgen.Preset(name)
	if err != nil {
		b.Fatal(err)
	}
	m.Jobs = jobs
	tr, err := wgen.Generate(m)
	if err != nil {
		b.Fatal(err)
	}
	traceCache[key] = tr
	return tr
}

// BenchmarkSimulate measures raw scheduling throughput: one full EASY
// simulation of a 5000-job trace per iteration.
func BenchmarkSimulate(b *testing.B) {
	for _, name := range experiments.Workloads() {
		b.Run(name, func(b *testing.B) {
			tr := benchTrace(b, name, 5000)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := runner.Run(runner.Spec{Trace: tr}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(5000*b.N)/b.Elapsed().Seconds(), "jobs/s")
		})
	}
}

// BenchmarkSimulatePowerAware measures the power-aware scheduler's
// overhead relative to plain EASY (the frequency loop runs per decision).
func BenchmarkSimulatePowerAware(b *testing.B) {
	gears := dvfs.PaperGearSet()
	pol, err := core.NewPolicy(core.Params{BSLDThreshold: 2, WQThreshold: core.NoWQLimit},
		gears, dvfs.NewTimeModel(runner.DefaultBeta, gears))
	if err != nil {
		b.Fatal(err)
	}
	tr := benchTrace(b, "CTC", 5000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := runner.Run(runner.Spec{Trace: tr, Policy: pol}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(5000*b.N)/b.Elapsed().Seconds(), "jobs/s")
}

// BenchmarkSweepSerialVsParallel measures the sweep pool's scaling on a
// realistic slice of the paper grid (2 workloads × 3 policies × 2 machine
// sizes, 1000-job traces). The parallel case should approach a NumCPU-fold
// speedup over workers=1 since runs are independent and CPU-bound; results
// are asserted identical, so the speedup is free of semantic drift.
func BenchmarkSweepSerialVsParallel(b *testing.B) {
	grid := sweep.Grid{
		Traces: []string{"CTC", "SDSCBlue"},
		Policies: []sweep.PolicyConfig{
			{},
			{BSLDThr: 2, WQThr: 16},
			{BSLDThr: 3, WQThr: core.NoWQLimit},
		},
		SizeFactors: []float64{1, 1.2},
	}
	resolver := &sweep.Resolver{Trace: sweep.CachedLoader(func(name string) (*workload.Trace, error) {
		return benchTrace(b, name, 1000), nil
	})}
	var serial []sweep.Result
	for _, tc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", 0}, // all cores
	} {
		b.Run(tc.name, func(b *testing.B) {
			var last []sweep.Result
			for i := 0; i < b.N; i++ {
				results, err := sweep.Sweep(context.Background(), grid, resolver,
					&sweep.Pool{Workers: tc.workers})
				if err != nil {
					b.Fatal(err)
				}
				last = results
			}
			b.ReportMetric(float64(grid.Size())/b.Elapsed().Seconds()*float64(b.N), "runs/s")
			if tc.workers == 1 {
				serial = last
				return
			}
			if serial == nil {
				return // serial case filtered out by -bench
			}
			// Determinism check rides along: worker count must not change
			// a single metric.
			for i := range last {
				if last[i].Outcome.Results != serial[i].Outcome.Results {
					b.Fatalf("parallel result %d differs from serial", i)
				}
			}
		})
	}
}

// --- hot path at scale ----------------------------------------------------

// heapSampler rides along as an extra recorder and samples the live heap
// every sampleEvery scheduling passes, capturing the peak. It lets the
// large-scale benchmarks verify the streamed-arrival engine keeps memory
// O(running jobs) where the seed implementation held the whole trace in
// the event heap.
type heapSampler struct {
	every int
	n     int
	peak  uint64
}

func (h *heapSampler) JobStarted(*sched.RunState, float64)  {}
func (h *heapSampler) JobFinished(*sched.RunState, float64) {}

func (h *heapSampler) PassEnd(now float64, queued, busy int) {
	h.n++
	if h.n%h.every != 0 {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > h.peak {
		h.peak = ms.HeapAlloc
	}
}

// BenchmarkHotPathSeedVsOptimized replays the Million stress preset
// through the seed-era scheduler hot path (upfront arrival heap, linear
// scan completion removal, per-pass allocation) and the optimized one
// (streamed arrivals, tombstoned run list, pooled events and reused
// scratch). Both produce byte-identical schedules — the determinism
// regression in internal/sched proves it — so the ratio is pure
// implementation speedup. Results are recorded in BENCH_sched.json.
func BenchmarkHotPathSeedVsOptimized(b *testing.B) {
	for _, jobs := range []int{100_000, 1_000_000} {
		for _, mode := range []struct {
			name   string
			compat sched.Compat
		}{
			{"seed", sched.SeedCompat()},
			{"optimized", sched.Compat{}},
		} {
			b.Run(fmt.Sprintf("jobs=%d/%s", jobs, mode.name), func(b *testing.B) {
				tr := benchTrace(b, "Million", jobs)
				b.ReportAllocs()
				b.ResetTimer()
				sampler := &heapSampler{every: 4096}
				peakEvents := 0
				for i := 0; i < b.N; i++ {
					out, err := runner.Run(runner.Spec{
						Trace:          tr,
						Compat:         mode.compat,
						ExtraRecorders: []sched.Recorder{sampler},
					})
					if err != nil {
						b.Fatal(err)
					}
					if out.Results.Jobs != jobs {
						b.Fatalf("completed %d jobs, want %d", out.Results.Jobs, jobs)
					}
					peakEvents = out.PeakEvents
				}
				b.ReportMetric(float64(jobs*b.N)/b.Elapsed().Seconds(), "jobs/s")
				b.ReportMetric(float64(sampler.peak)/(1<<20), "peak-heap-MB")
				b.ReportMetric(float64(peakEvents), "peak-events")
			})
		}
	}
}

// BenchmarkConservativeMillionPreset replays Million-preset trace
// segments under conservative backfilling, the variant that replans every
// queued job against the availability profile each pass. Three modes span
// the profile's history: the seed path insertion-sorts two deltas per
// occupancy entry into a flat list — O(n) memmoves per entry, O(n²) per
// replanning pass over n running jobs — and re-sorts the release list
// from scratch every pass; the rebuild path (PR 3/4, Compat.RebuildProfile)
// bulk-loads the incrementally maintained (PlannedEnd, id)-sorted release
// schedule every pass, still O(running + queued) per pass; the optimized
// path persists the profile across passes — O(1) base updates per event,
// retained reservations under the changed-prefix analysis, and the
// skyline-tree EarliestStart. Results are recorded in BENCH_sched.json;
// the schedules are byte-identical across modes (internal/sched
// determinism tests).
func BenchmarkConservativeMillionPreset(b *testing.B) {
	for _, jobs := range []int{10_000, 40_000} {
		for _, mode := range []struct {
			name   string
			compat sched.Compat
		}{
			{"seed", sched.SeedCompat()},
			{"rebuild", sched.Compat{RebuildProfile: true}},
			{"optimized", sched.Compat{}},
		} {
			b.Run(fmt.Sprintf("jobs=%d/%s", jobs, mode.name), func(b *testing.B) {
				tr := benchTrace(b, "Million", jobs)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					out, err := runner.Run(runner.Spec{
						Trace:   tr,
						Variant: sched.Conservative,
						Compat:  mode.compat,
					})
					if err != nil {
						b.Fatal(err)
					}
					if out.Results.Jobs != jobs {
						b.Fatalf("completed %d jobs, want %d", out.Results.Jobs, jobs)
					}
				}
				b.ReportMetric(float64(jobs*b.N)/b.Elapsed().Seconds(), "jobs/s")
			})
		}
	}
}

// BenchmarkConservativeFullMillion replays the FULL Million preset — all
// one million jobs, streamed so no trace slice exists — under
// conservative backfilling, the replanning-heavy regime system-scale
// power-management replays operate in. The modes isolate successive wins
// on top of PR 5's persistent profile: "memmove" keeps the (PlannedEnd,
// id)-sorted release cache as a flat slice whose inserts and removes
// each move O(running jobs) entries (Compat.SliceReleases, the PR 5
// path); "flatresv" has the chunked release index but keeps the profile
// on its flat tiers — append-and-resort pending buffer, skyline-tree
// rebuilds, flat reservation slices (Compat.FlatReservations, the PR 6-8
// path); "optimized" is the full chunked-index profile — skyline and
// reservation tiers both chunked, plus the widened changed-prefix
// analysis. Schedules are byte-identical across the modes
// (TestCompatModesProduceIdenticalSchedules, the index differential
// suites). The seed and rebuild modes are deliberately absent: at ~300
// jobs/s the seed path would need close to an hour per iteration; their
// ratios stay pinned at 10k/40k jobs by BenchmarkConservativeMillionPreset.
// Results are recorded in BENCH_sched.json; cmd/benchgate gates 4 and 6
// hold the optimized/memmove and optimized/flatresv ratios in CI.
func BenchmarkConservativeFullMillion(b *testing.B) {
	for _, mode := range []struct {
		name   string
		compat sched.Compat
	}{
		{"memmove", sched.Compat{SliceReleases: true}},
		{"flatresv", sched.Compat{FlatReservations: true}},
		{"optimized", sched.Compat{}},
	} {
		b.Run(fmt.Sprintf("jobs=%d/%s", wgen.MillionJobs, mode.name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				src, err := wgen.Stream(wgen.Million())
				if err != nil {
					b.Fatal(err)
				}
				out, err := runner.Run(runner.Spec{
					Source:  src,
					Variant: sched.Conservative,
					Compat:  mode.compat,
				})
				if err != nil {
					b.Fatal(err)
				}
				if out.Results.Jobs != wgen.MillionJobs {
					b.Fatalf("completed %d jobs, want %d", out.Results.Jobs, wgen.MillionJobs)
				}
			}
			b.ReportMetric(float64(wgen.MillionJobs*b.N)/b.Elapsed().Seconds(), "jobs/s")
		})
	}
}

// BenchmarkControllerMillion measures the power-controller layer's
// observe/decide overhead on the EASY Million replay: "off" runs without
// a controller, "capped" runs the PI power-cap controller at CapFrac=1 —
// the cap equals peak draw, so the controller meters the machine and runs
// its control law every pass but never actuates (the neutrality tests in
// internal/altpolicy prove the schedule is byte-identical, and the
// Results are asserted identical across the modes here). The capped/off
// jobs/s ratio is therefore pure controller-layer cost; cmd/benchgate
// gate 5 holds it against BENCH_sched.json in CI.
func BenchmarkControllerMillion(b *testing.B) {
	const jobs = 1_000_000
	var off *metrics.Results
	for _, mode := range []string{"off", "capped"} {
		b.Run(fmt.Sprintf("jobs=%d/%s", jobs, mode), func(b *testing.B) {
			tr := benchTrace(b, "Million", jobs)
			spec := runner.Spec{Trace: tr}
			if mode == "capped" {
				spec.Controller = scenario.ControllerConfig{CapFrac: 1}
			}
			b.ReportAllocs()
			b.ResetTimer()
			var last runner.Outcome
			for i := 0; i < b.N; i++ {
				out, err := runner.Run(spec)
				if err != nil {
					b.Fatal(err)
				}
				if out.Results.Jobs != jobs {
					b.Fatalf("completed %d jobs, want %d", out.Results.Jobs, jobs)
				}
				last = out
			}
			b.ReportMetric(float64(jobs*b.N)/b.Elapsed().Seconds(), "jobs/s")
			if mode == "off" {
				r := last.Results
				off = &r
			} else if off != nil && last.Results != *off {
				b.Fatalf("capped replay diverged from controller-free:\n%+v\n%+v", last.Results, *off)
			}
		})
	}
}

// BenchmarkConservativeTenMillion replays the full TenMillion preset
// under conservative backfilling through the streaming pipeline —
// replanning at the scale PR 4 opened for EASY. Optimized-only: the
// memmove mode at this length is benchmarked at one million jobs above.
func BenchmarkConservativeTenMillion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		src, err := wgen.Stream(wgen.TenMillion())
		if err != nil {
			b.Fatal(err)
		}
		out, err := runner.Run(runner.Spec{Source: src, Variant: sched.Conservative})
		if err != nil {
			b.Fatal(err)
		}
		if out.Results.Jobs != wgen.TenMillionJobs {
			b.Fatalf("completed %d jobs, want %d", out.Results.Jobs, wgen.TenMillionJobs)
		}
	}
	b.ReportMetric(float64(wgen.TenMillionJobs*b.N)/b.Elapsed().Seconds(), "jobs/s")
}

// BenchmarkScenarioConcurrentReplay replays one shared compiled Million
// scenario from 8 goroutines at once: the scenario layer's contract is
// that a compiled scenario is immutable and goroutine-safe, so N
// concurrent executions walk one workload arena through independent
// cursors and must produce bit-identical Results (asserted inside the
// benchmark; the -race CI job runs the equivalent correctness test in
// internal/scenario). The reported jobs/s is the aggregate across the 8
// replicas — the what-if server's throughput model for a cache-cold
// burst of identical queries. Results are recorded in BENCH_sched.json.
func BenchmarkScenarioConcurrentReplay(b *testing.B) {
	const replicas = 8
	sc, err := scenario.Compile(scenario.Spec{
		Workload:    "Million",
		Materialize: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	if !sc.ConcurrentSafe() {
		b.Fatal("compiled scenario not concurrent-safe")
	}
	jobs := sc.Jobs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		outs := make([]runner.Outcome, replicas)
		var wg sync.WaitGroup
		for r := 0; r < replicas; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				out, err := sc.Execute()
				if err != nil {
					b.Errorf("replica %d: %v", r, err)
					return
				}
				outs[r] = out
			}(r)
		}
		wg.Wait()
		if b.Failed() {
			b.FailNow()
		}
		for r := 1; r < replicas; r++ {
			if outs[r].Results != outs[0].Results {
				b.Fatalf("replica %d diverged from replica 0", r)
			}
		}
		if outs[0].Results.Jobs != jobs {
			b.Fatalf("completed %d jobs, want %d", outs[0].Results.Jobs, jobs)
		}
	}
	b.ReportMetric(float64(replicas*jobs*b.N)/b.Elapsed().Seconds(), "jobs/s")
}

// tightGC prepares a heap-measuring benchmark: it drops the shared trace
// cache (other benches' cached Million traces would otherwise sit in the
// live set) and pins the GC growth target to 20%, so the measured
// high-water tracks live memory instead of collection lag — which under
// the default GOGC=100 is proportional to whatever previous benchmarks
// left alive, not to this run's footprint. The cache refills on demand
// and the GC target is restored when the benchmark ends.
func tightGC(b *testing.B) {
	b.Helper()
	traceMu.Lock()
	traceCache = map[string]*workload.Trace{}
	traceMu.Unlock()
	old := debug.SetGCPercent(20)
	b.Cleanup(func() { debug.SetGCPercent(old) })
}

// BenchmarkStreamingMillionHeap measures the tentpole of the streaming
// workload pipeline: the peak live heap of a Million-preset 1M-job EASY
// replay, materialized (trace generated upfront, scheduler reads the
// slice) versus streamed (wgen.Stream feeds the scheduler job by job).
// Each sub-run garbage-collects first and reports the heap high-water
// RELATIVE to that baseline, so the numbers isolate the replay's own
// footprint from whatever other benchmarks left alive.
//
// trace-MB captures the workload-resident component alone, sampled right
// after the workload is built and before the simulation starts: the
// materialized slice costs ~90 MB where the streaming source holds only
// RNG cursors — the O(trace) → O(1) conversion the refactor is about.
// The run results are asserted identical across modes, so the memory win
// is free of semantic drift. cmd/benchgate gates the streamed
// peak-heap-MB against BENCH_sched.json in CI.
func BenchmarkStreamingMillionHeap(b *testing.B) {
	tightGC(b)
	var materialized *metrics.Results
	for _, mode := range []string{"materialized", "streamed"} {
		b.Run(fmt.Sprintf("jobs=%d/%s", wgen.MillionJobs, mode), func(b *testing.B) {
			var last runner.Outcome
			var peakMB, traceMB float64
			for i := 0; i < b.N; i++ {
				heap := metrics.NewHeapWatermark(0)
				spec := runner.Spec{ExtraRecorders: []sched.Recorder{heap}}
				if mode == "materialized" {
					tr, err := wgen.Generate(wgen.Million())
					if err != nil {
						b.Fatal(err)
					}
					spec.Trace = tr
				} else {
					src, err := wgen.Stream(wgen.Million())
					if err != nil {
						b.Fatal(err)
					}
					spec.Source = src
				}
				heap.Sample()
				traceMB = heap.PeakMB()
				out, err := runner.Run(spec)
				if err != nil {
					b.Fatal(err)
				}
				heap.Sample()
				peakMB = heap.PeakMB()
				last = out
			}
			b.ReportMetric(float64(wgen.MillionJobs*b.N)/b.Elapsed().Seconds(), "jobs/s")
			b.ReportMetric(peakMB, "peak-heap-MB")
			b.ReportMetric(traceMB, "trace-MB")
			b.ReportMetric(float64(last.PeakEvents), "peak-events")
			if mode == "materialized" {
				r := last.Results
				materialized = &r
			} else if materialized != nil && last.Results != *materialized {
				b.Fatalf("streamed replay diverged from materialized:\n%+v\n%+v", last.Results, *materialized)
			}
		})
	}
}

// BenchmarkStreamingTenMillionReplay replays the full TenMillion preset —
// ten million jobs, a workload whose materialized form (~1 GB) does not
// fit a CI runner — through the streaming pipeline, proving the scale the
// refactor opens: generation, scheduling and metrics all run in
// O(running jobs) live memory.
func BenchmarkStreamingTenMillionReplay(b *testing.B) {
	tightGC(b)
	for i := 0; i < b.N; i++ {
		heap := metrics.NewHeapWatermark(0)
		src, err := wgen.Stream(wgen.TenMillion())
		if err != nil {
			b.Fatal(err)
		}
		out, err := runner.Run(runner.Spec{Source: src, ExtraRecorders: []sched.Recorder{heap}})
		if err != nil {
			b.Fatal(err)
		}
		heap.Sample()
		if out.Results.Jobs != wgen.TenMillionJobs {
			b.Fatalf("completed %d jobs, want %d", out.Results.Jobs, wgen.TenMillionJobs)
		}
		b.ReportMetric(heap.PeakMB(), "peak-heap-MB")
		b.ReportMetric(float64(out.PeakEvents), "peak-events")
	}
	b.ReportMetric(float64(wgen.TenMillionJobs*b.N)/b.Elapsed().Seconds(), "jobs/s")
}

// --- ablations ------------------------------------------------------------

const ablationJobs = 2000

func ablationPolicy(b *testing.B, params core.Params) sched.GearPolicy {
	b.Helper()
	gears := dvfs.PaperGearSet()
	pol, err := core.NewPolicy(params, gears, dvfs.NewTimeModel(runner.DefaultBeta, gears))
	if err != nil {
		b.Fatal(err)
	}
	return pol
}

// BenchmarkAblationStrictBackfillBSLD compares the default lenient
// backfill semantics against the literal Figure 2 pseudo-code on the
// saturated SDSC workload, where the difference is largest (DESIGN.md).
func BenchmarkAblationStrictBackfillBSLD(b *testing.B) {
	tr := benchTrace(b, "SDSC", ablationJobs)
	for _, strict := range []bool{false, true} {
		name := "lenient"
		if strict {
			name = "strict"
		}
		b.Run(name, func(b *testing.B) {
			pol := ablationPolicy(b, core.Params{
				BSLDThreshold: 2, WQThreshold: core.NoWQLimit, StrictBackfillBSLD: strict,
			})
			var out runner.Outcome
			var err error
			for i := 0; i < b.N; i++ {
				if out, err = runner.Run(runner.Spec{Trace: tr, Policy: pol}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(out.Results.AvgWait, "avg-wait-s")
			b.ReportMetric(out.Results.AvgBSLD, "avg-BSLD")
		})
	}
}

// BenchmarkAblationBeta sweeps the β dilation sensitivity the paper fixes
// at 0.5 (its Section 7 future work calls for a per-job β analysis).
func BenchmarkAblationBeta(b *testing.B) {
	tr := benchTrace(b, "SDSCBlue", ablationJobs)
	base, err := runner.Run(runner.Spec{Trace: tr})
	if err != nil {
		b.Fatal(err)
	}
	for _, beta := range []float64{0.25, 0.5, 0.75, 1.0} {
		b.Run(fmt.Sprintf("beta=%.2f", beta), func(b *testing.B) {
			pol := ablationPolicy(b, core.Params{BSLDThreshold: 2, WQThreshold: core.NoWQLimit})
			var out runner.Outcome
			var err error
			for i := 0; i < b.N; i++ {
				if out, err = runner.Run(runner.Spec{Trace: tr, Policy: pol, Beta: beta}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*out.Results.CompEnergy/base.Results.CompEnergy, "energy-%")
			b.ReportMetric(out.Results.AvgBSLD, "avg-BSLD")
		})
	}
}

// BenchmarkAblationDynamicBoost measures the paper's future-work
// extension: raising running reduced jobs to Ftop once the queue grows.
func BenchmarkAblationDynamicBoost(b *testing.B) {
	tr := benchTrace(b, "SDSCBlue", ablationJobs)
	base, err := runner.Run(runner.Spec{Trace: tr})
	if err != nil {
		b.Fatal(err)
	}
	for _, boost := range []bool{false, true} {
		name := "off"
		if boost {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			pol := ablationPolicy(b, core.Params{
				BSLDThreshold: 2, WQThreshold: core.NoWQLimit, Boost: boost, BoostWQ: 16,
			})
			var out runner.Outcome
			var err error
			for i := 0; i < b.N; i++ {
				if out, err = runner.Run(runner.Spec{Trace: tr, Policy: pol}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*out.Results.CompEnergy/base.Results.CompEnergy, "energy-%")
			b.ReportMetric(out.Results.AvgWait, "avg-wait-s")
		})
	}
}

// BenchmarkAblationWQCounting explores the WQsize interpretation: counting
// the job under decision itself is equivalent to lowering WQthreshold by
// one, so the pair (1, 0) brackets the ambiguity at the paper's strictest
// setting (DESIGN.md).
func BenchmarkAblationWQCounting(b *testing.B) {
	tr := benchTrace(b, "CTC", ablationJobs)
	base, err := runner.Run(runner.Spec{Trace: tr})
	if err != nil {
		b.Fatal(err)
	}
	for _, wq := range []int{0, 1} {
		b.Run(fmt.Sprintf("wq=%d", wq), func(b *testing.B) {
			pol := ablationPolicy(b, core.Params{BSLDThreshold: 2, WQThreshold: wq})
			var out runner.Outcome
			var err error
			for i := 0; i < b.N; i++ {
				if out, err = runner.Run(runner.Spec{Trace: tr, Policy: pol}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*out.Results.CompEnergy/base.Results.CompEnergy, "energy-%")
			b.ReportMetric(float64(out.Results.ReducedJobs), "reduced-jobs")
		})
	}
}

// BenchmarkAblationGearSet restricts the gear set to its upper half,
// quantifying how much of the savings comes from the deepest gears.
func BenchmarkAblationGearSet(b *testing.B) {
	tr := benchTrace(b, "LLNLAtlas", ablationJobs)
	base, err := runner.Run(runner.Spec{Trace: tr})
	if err != nil {
		b.Fatal(err)
	}
	full := dvfs.PaperGearSet()
	for _, tc := range []struct {
		name  string
		gears dvfs.GearSet
	}{
		{"all-six", full},
		{"top-three", full.AtOrAbove(1.7)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			pol, err := core.NewPolicy(core.Params{BSLDThreshold: 2, WQThreshold: core.NoWQLimit},
				tc.gears, dvfs.NewTimeModel(runner.DefaultBeta, tc.gears))
			if err != nil {
				b.Fatal(err)
			}
			var out runner.Outcome
			for i := 0; i < b.N; i++ {
				if out, err = runner.Run(runner.Spec{Trace: tr, Policy: pol, Gears: tc.gears}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*out.Results.CompEnergy/base.Results.CompEnergy, "energy-%")
		})
	}
}

// BenchmarkAblationBasePolicy runs the frequency assignment on top of the
// three base scheduling policies, supporting the paper's remark that the
// algorithm "can be applied with any parallel job scheduling policy".
func BenchmarkAblationBasePolicy(b *testing.B) {
	tr := benchTrace(b, "CTC", ablationJobs)
	for _, tc := range []struct {
		name    string
		variant sched.Variant
	}{
		{"easy", sched.EASY},
		{"fcfs", sched.FCFS},
		{"conservative", sched.Conservative},
	} {
		b.Run(tc.name, func(b *testing.B) {
			pol := ablationPolicy(b, core.Params{BSLDThreshold: 2, WQThreshold: core.NoWQLimit})
			var out runner.Outcome
			var err error
			for i := 0; i < b.N; i++ {
				if out, err = runner.Run(runner.Spec{Trace: tr, Policy: pol, Variant: tc.variant}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(out.Results.AvgBSLD, "avg-BSLD")
			b.ReportMetric(out.Results.AvgWait, "avg-wait-s")
		})
	}
}
